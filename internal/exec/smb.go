// smb.go holds the sort-merge bucket join's small side. Where a bucket map
// join hashes its bucket, an SMB join keeps the bucket's rows as one sorted
// run keyed by the order-preserving join-key encoding: because the table
// was written sorted on its bucketing columns, loading preserves the order
// and no hash table is ever built. The big side streams its own sorted
// bucket file; each probe advances a cursor through the run (with a
// binary-search restart if the stream ever regresses), so the per-bucket
// join is a merge of two sorted inputs.
package exec

import (
	"bytes"
	"sort"

	"repro/internal/plan"
	"repro/internal/types"
)

// sortedSide is one SMB small input: rows of a single bucket ordered by
// encoded join key.
type sortedSide struct {
	keys [][]byte
	rows []types.Row
	// pos is the cursor into keys: the start of the group the last probe
	// matched (or where it would be). Probes from a sorted big side only
	// ever move it forward.
	pos int
}

// matches returns the rows whose join key equals kb, advancing the merge
// cursor. Out-of-order probes restart with a binary search, so correctness
// never depends on the big side actually being sorted.
func (s *sortedSide) matches(kb []byte) []types.Row {
	if s.pos > 0 && bytes.Compare(kb, s.keys[s.pos-1]) < 0 {
		// The stream regressed below the current group: restart.
		s.pos = sort.Search(len(s.keys), func(i int) bool {
			return bytes.Compare(s.keys[i], kb) >= 0
		})
	}
	for s.pos < len(s.keys) && bytes.Compare(s.keys[s.pos], kb) < 0 {
		s.pos++
	}
	start := s.pos
	end := start
	for end < len(s.keys) && bytes.Equal(s.keys[end], kb) {
		end++
	}
	if start == end {
		return nil
	}
	return s.rows[start:end]
}

// buildSortedSide loads one bucket of an SMB small input through its local
// chain, keyed and ordered by the join-key encoding. The bucket file is
// written sorted on the bucketing columns, so the stable sort is a no-op
// pass in the common case and purely defensive otherwise.
func buildSortedSide(ctx *Context, src plan.Node, keys []plan.Expr, bucket int) (*sortedSide, error) {
	side := &sortedSide{}
	open := func(ts *plan.TableScan) (func() (types.Row, error), error) {
		return ctx.ScanRowsBucket(ts, bucket)
	}
	sink := func(row types.Row) error {
		keyVals := make([]any, len(keys))
		for i, k := range keys {
			keyVals[i] = k.Eval(row)
		}
		kb, err := EncodeKey(keyVals, nil)
		if err != nil {
			return err
		}
		side.keys = append(side.keys, kb)
		side.rows = append(side.rows, row.Clone())
		return nil
	}
	if err := runLocalChainScan(ctx, src, open, sink); err != nil {
		return nil, err
	}
	if !sort.SliceIsSorted(side.keys, func(i, j int) bool {
		return bytes.Compare(side.keys[i], side.keys[j]) < 0
	}) {
		idx := make([]int, len(side.keys))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool {
			return bytes.Compare(side.keys[idx[i]], side.keys[idx[j]]) < 0
		})
		keysOut := make([][]byte, len(idx))
		rowsOut := make([]types.Row, len(idx))
		for i, j := range idx {
			keysOut[i], rowsOut[i] = side.keys[j], side.rows[j]
		}
		side.keys, side.rows = keysOut, rowsOut
	}
	return side, nil
}
