// hashjoin.go holds the map-join build side: a hash table from encoded
// join-key bytes to build rows, built once per query and shared across
// map tasks, retry and speculative attempts (§5.1's local work used to
// run per attempt). For the vectorized probe (§6) the same table exposes
// a lazily-derived column-major projection so probes gather build values
// without boxing rows.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/plan"
	"repro/internal/types"
)

// HashTable is a built map-join small table: encoded key bytes -> build
// rows in scan order. Once built it is read-only, so concurrent map tasks
// probe it without locking.
type HashTable struct {
	Table map[string][]types.Row
	Rows  int64 // build-side rows hashed

	colOnce sync.Once
	col     *ColumnarBuild
	colErr  error
}

// ColumnarBuild is the column-major projection of a HashTable used by the
// vectorized probe: Index maps key bytes to build-row positions (per-key
// order preserved, so vectorized output matches the row engine's match
// order byte for byte) and the per-column arrays hold the decomposed
// values, typed like column vectors (booleans as 0/1 longs, strings as
// byte slices).
type ColumnarBuild struct {
	Index   map[string][]int32
	Longs   [][]int64
	Doubles [][]float64
	Bytes   [][][]byte
	Nulls   [][]bool
}

// Columnar returns the column-major projection, deriving it on first use.
// kinds describes the build rows' column kinds (the small side's output
// schema); the projection is cached, so every caller must pass the same
// kinds.
func (t *HashTable) Columnar(kinds []types.Kind) (*ColumnarBuild, error) {
	t.colOnce.Do(func() {
		t.col, t.colErr = buildColumnar(t, kinds)
	})
	return t.col, t.colErr
}

func buildColumnar(t *HashTable, kinds []types.Kind) (*ColumnarBuild, error) {
	cb := &ColumnarBuild{
		Index:   make(map[string][]int32, len(t.Table)),
		Longs:   make([][]int64, len(kinds)),
		Doubles: make([][]float64, len(kinds)),
		Bytes:   make([][][]byte, len(kinds)),
		Nulls:   make([][]bool, len(kinds)),
	}
	n := int(t.Rows)
	for i, k := range kinds {
		cb.Nulls[i] = make([]bool, 0, n)
		switch {
		case k.IsInteger() || k == types.Boolean || k == types.Timestamp:
			cb.Longs[i] = make([]int64, 0, n)
		case k.IsFloating():
			cb.Doubles[i] = make([]float64, 0, n)
		case k == types.String:
			cb.Bytes[i] = make([][]byte, 0, n)
		default:
			return nil, fmt.Errorf("exec: columnar build of %s column", k)
		}
	}
	pos := int32(0)
	for key, rows := range t.Table {
		positions := make([]int32, 0, len(rows))
		for _, row := range rows {
			if len(row) != len(kinds) {
				return nil, fmt.Errorf("exec: build row width %d != %d kinds", len(row), len(kinds))
			}
			for i, k := range kinds {
				v := row[i]
				cb.Nulls[i] = append(cb.Nulls[i], v == nil)
				switch {
				case k.IsInteger() || k == types.Timestamp:
					var x int64
					if v != nil {
						x = v.(int64)
					}
					cb.Longs[i] = append(cb.Longs[i], x)
				case k == types.Boolean:
					var x int64
					if v == true {
						x = 1
					}
					cb.Longs[i] = append(cb.Longs[i], x)
				case k.IsFloating():
					var x float64
					if v != nil {
						x = v.(float64)
					}
					cb.Doubles[i] = append(cb.Doubles[i], x)
				default: // String
					var b []byte
					if v != nil {
						b = []byte(v.(string))
					}
					cb.Bytes[i] = append(cb.Bytes[i], b)
				}
			}
			positions = append(positions, pos)
			pos++
		}
		cb.Index[key] = positions
	}
	return cb, nil
}

// BuildHashTable runs the small-table operator chain locally (scan +
// filters/selects) and hashes its output by the join key — the hash-table
// build of §5.1.
func BuildHashTable(ctx *Context, src plan.Node, keys []plan.Expr) (*HashTable, error) {
	ht := &HashTable{Table: make(map[string][]types.Row)}
	sink := func(row types.Row) error {
		keyVals := make([]any, len(keys))
		for i, k := range keys {
			keyVals[i] = k.Eval(row)
		}
		kb, err := EncodeKey(keyVals, nil)
		if err != nil {
			return err
		}
		ht.Table[string(kb)] = append(ht.Table[string(kb)], row.Clone())
		ht.Rows++
		return nil
	}
	if err := runLocalChain(ctx, src, sink); err != nil {
		return nil, err
	}
	return ht, nil
}

// BuildHashTableBucket is BuildHashTable restricted to one hash bucket of
// the small table — the bucket map join's per-task build, which reads the
// single bucket file matching the task's big-side split instead of the
// whole table.
func BuildHashTableBucket(ctx *Context, src plan.Node, keys []plan.Expr, bucket int) (*HashTable, error) {
	ht := &HashTable{Table: make(map[string][]types.Row)}
	sink := func(row types.Row) error {
		keyVals := make([]any, len(keys))
		for i, k := range keys {
			keyVals[i] = k.Eval(row)
		}
		kb, err := EncodeKey(keyVals, nil)
		if err != nil {
			return err
		}
		ht.Table[string(kb)] = append(ht.Table[string(kb)], row.Clone())
		ht.Rows++
		return nil
	}
	open := func(ts *plan.TableScan) (func() (types.Row, error), error) {
		return ctx.ScanRowsBucket(ts, bucket)
	}
	if err := runLocalChainScan(ctx, src, open, sink); err != nil {
		return nil, err
	}
	return ht, nil
}
