// tap.go wraps operator edges with profiling taps. Taps exist only when
// the builder is given a PlanProfile; an unprofiled build produces exactly
// the operator tree it always did, so profiling costs nothing when off.
//
// A tap sits on one parent→child edge and charges the *child* node: its
// row count is the child's input rows, and its wall time is the time spent
// inside the child's subtree (inclusive — a parent's wall includes its
// children's, since Process calls nest). Several edges into the same child
// share one OpStats, so a Join's stats sum both inputs.
package exec

import (
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/types"
)

// muxTarget is satisfied by operators that accept rows whose reduce tag is
// already resolved (muxOp, and taps wrapping one). Demux dispatches through
// this interface instead of a concrete type so profiling taps are
// transparent to the §5.2.2 coordination path.
type muxTarget interface {
	processDirect(row types.Row, tag int) error
}

// tapOp wraps an edge into inner, recording rows and inclusive wall time
// into stats. It runs on a single task goroutine, so the first/last
// interval is tracked locally and folded into stats at Flush.
type tapOp struct {
	inner Operator
	stats *obs.OpStats
	first time.Time
	last  time.Time
}

func (t *tapOp) Init(ctx *Context) error { return t.inner.Init(ctx) }

func (t *tapOp) Process(row types.Row, tag int) error {
	start := time.Now()
	if t.first.IsZero() {
		t.first = start
	}
	err := t.inner.Process(row, tag)
	t.last = time.Now()
	t.stats.AddRows(1)
	t.stats.AddWall(t.last.Sub(start))
	return err
}

// processDirect mirrors Process for the Demux→Mux fast path.
func (t *tapOp) processDirect(row types.Row, tag int) error {
	start := time.Now()
	if t.first.IsZero() {
		t.first = start
	}
	var err error
	if m, ok := t.inner.(muxTarget); ok {
		err = m.processDirect(row, tag)
	} else {
		err = t.inner.Process(row, tag)
	}
	t.last = time.Now()
	t.stats.AddRows(1)
	t.stats.AddWall(t.last.Sub(start))
	return err
}

func (t *tapOp) StartGroup() error {
	start := time.Now()
	err := t.inner.StartGroup()
	t.stats.AddWall(time.Since(start))
	return err
}

func (t *tapOp) EndGroup() error {
	start := time.Now()
	err := t.inner.EndGroup()
	t.stats.AddWall(time.Since(start))
	return err
}

// Flush times the inner flush (group-bys emit their hash tables here) and
// folds the observed activity interval into the shared stats.
func (t *tapOp) Flush() error {
	start := time.Now()
	if t.first.IsZero() {
		t.first = start
	}
	err := t.inner.Flush()
	t.last = time.Now()
	t.stats.AddWall(t.last.Sub(start))
	t.stats.MarkInterval(t.first, t.last)
	return err
}

// tap wraps op with a profiling tap charging node n, or returns op
// unchanged when the builder has no profile.
func (b *Builder) tap(n plan.Node, op Operator) Operator {
	if b.prof == nil {
		return op
	}
	return &tapOp{inner: op, stats: b.prof.Op(n.Base().ID)}
}
