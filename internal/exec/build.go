// build.go instantiates runtime operator trees from plan subgraphs. The
// same builder serves map chains (everything between a TableScan and its
// ReduceSinks/FileSinks) and reduce trees (everything below the shuffle).
package exec

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/plan"
)

// Builder memoizes runtime instances so plan nodes shared by several
// parents (joins, demux targets) get exactly one runtime operator.
type Builder struct {
	built map[plan.Node]Operator
	prof  *obs.PlanProfile
}

// NewBuilder creates a builder.
func NewBuilder() *Builder { return &Builder{built: map[plan.Node]Operator{}} }

// SetProfile makes subsequent builds insert per-edge profiling taps that
// record into p (see tap.go). A nil profile builds untapped trees.
func (b *Builder) SetProfile(p *obs.PlanProfile) { b.prof = p }

// Build returns the runtime operator for a plan node, constructing it and
// its downstream subtree on first use.
func (b *Builder) Build(n plan.Node) (Operator, error) {
	if op, ok := b.built[n]; ok {
		return op, nil
	}
	op, err := b.construct(n)
	if err != nil {
		return nil, err
	}
	b.built[n] = op
	// Wire children (except for ops that terminate a fragment).
	if withKids, ok := op.(interface{ kids() *base }); ok {
		for _, childNode := range n.Base().Children {
			childOp, err := b.Build(childNode)
			if err != nil {
				return nil, err
			}
			withKids.kids().children = append(withKids.kids().children, childRef{
				op:  b.tap(childNode, childOp),
				tag: parentIndex(childNode, n),
			})
		}
	}
	return op, nil
}

// parentIndex finds n's position among child's plan parents; this is the
// edge tag children receive (Mux translates it via ParentTags).
func parentIndex(child, n plan.Node) int {
	for i, p := range child.Base().Parents {
		if p == n {
			return i
		}
	}
	return 0
}

func (b *base) kids() *base { return b }

func (b *Builder) construct(n plan.Node) (Operator, error) {
	switch t := n.(type) {
	case *plan.Filter:
		return &filterOp{node: t}, nil
	case *plan.Select:
		return &selectOp{node: t}, nil
	case *plan.Limit:
		return &limitOp{node: t}, nil
	case *plan.FileSink:
		return &fileSinkOp{node: t}, nil
	case *plan.ReduceSink:
		return &reduceSinkOp{node: t}, nil
	case *plan.GroupBy:
		return &groupByOp{node: t}, nil
	case *plan.Join:
		return &joinOp{node: t}, nil
	case *plan.Mux:
		return &muxOp{node: t, numParents: len(t.Parents)}, nil
	case *plan.MapJoin:
		op := &mapJoinOp{node: t}
		for i, p := range t.Parents {
			if i == t.BigIdx {
				op.smallSources = append(op.smallSources, nil)
			} else {
				op.smallSources = append(op.smallSources, p)
			}
		}
		return op, nil
	case *plan.Demux:
		op := &demuxOp{node: t}
		for _, childNode := range t.Children {
			childOp, err := b.Build(childNode)
			if err != nil {
				return nil, err
			}
			op.children = append(op.children, childRef{op: b.tap(childNode, childOp)})
		}
		return op, nil
	case *plan.TableScan:
		return nil, fmt.Errorf("exec: TableScan %s must be driven by the task runner, not built", t.Label())
	}
	return nil, fmt.Errorf("exec: no runtime for operator %T", n)
}

// demuxOp builds its own children in construct (it indexes them by
// position), so it bypasses the generic wiring.

// BuildMapChain builds the runtime consumers of a TableScan: one operator
// per scan child, each row pushed to all of them.
func (b *Builder) BuildMapChain(scan *plan.TableScan) ([]Operator, error) {
	var out []Operator
	for _, c := range scan.Base().Children {
		op, err := b.Build(c)
		if err != nil {
			return nil, err
		}
		out = append(out, b.tap(c, op))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exec: scan %s has no consumers", scan.Label())
	}
	return out, nil
}
