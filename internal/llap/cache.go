// Package llap is an LLAP-style daemon layer (Camacho-Rodríguez et al.
// 2019; the SIGMOD 2014 paper's §9 outlook): a shared, size-bounded
// in-memory cache of decompressed ORC column chunks plus a pool of
// persistent executors. Repeated queries over immutable HDFS data stop
// paying the dominant avoidable cost — re-reading the same bytes from the
// DFS (and, here, its simulated disk charge) on every query — and stop
// paying per-query worker start cost.
package llap

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/orc"
)

// CacheStats aggregates data-cache accounting. All counters are cumulative;
// use Snapshot/Diff to measure a single query.
type CacheStats struct {
	Hits       atomic.Int64
	Misses     atomic.Int64
	Evictions  atomic.Int64
	Inserts    atomic.Int64
	Rejected   atomic.Int64 // inserts refused (chunk larger than evictable space)
	BytesSaved atomic.Int64 // decompressed bytes served from cache instead of the DFS
	Faults     atomic.Int64 // injected lookup faults degraded to misses
	// Invalidations counts chunks dropped by table writes (the unified
	// write-tracking path: a committed delta invalidates every cache tier).
	Invalidations atomic.Int64
}

// CacheSnapshot is an immutable copy of cache counters plus current
// occupancy.
type CacheSnapshot struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Inserts       int64
	Rejected      int64
	BytesSaved    int64
	Faults        int64
	Invalidations int64
	// Occupancy is a gauge, not a counter: Diff keeps the current value.
	BytesCached int64 `obs:",gauge"`
	Entries     int64 `obs:",gauge"`
}

// Diff returns the delta of the cumulative counters from an earlier
// snapshot; occupancy fields (BytesCached, Entries) keep their current
// values, since they are gauges, not counters.
func (s CacheSnapshot) Diff(earlier CacheSnapshot) CacheSnapshot {
	return obs.DiffStruct(s, earlier)
}

// HitRate returns hits/(hits+misses), or 0 when no lookups happened.
func (s CacheSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a concurrency-safe, size-bounded store of decompressed ORC
// stream chunks with LRU-with-pin eviction. It implements orc.ChunkCache.
// Pinned entries are never evicted (LLAP pins buffers while an executor
// decodes from them); everything else is evicted least-recently-used-first
// to keep total bytes within the budget.
type Cache struct {
	budget int64 // byte budget; <= 0 means unbounded
	stats  CacheStats
	faults atomic.Value // func(orc.ChunkKey) bool, set before first use

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // front = most recently used
	entries map[orc.ChunkKey]*list.Element
}

type cacheEntry struct {
	key  orc.ChunkKey
	data []byte
	pins int
}

// NewCache creates a chunk cache with the given byte budget; budget <= 0
// means unbounded.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[orc.ChunkKey]*list.Element),
	}
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// Stats exposes the live counters so they can be registered into an
// obs.Registry; use Snapshot for an immutable copy.
func (c *Cache) Stats() *CacheStats { return &c.stats }

// SetFaultHook installs a lookup fault injector: a lookup for which hook
// returns true is served as a miss (the Faults counter records it), so the
// caller falls back to reading the DFS — an injected cache error degrades
// performance, never correctness. A nil hook disables injection.
func (c *Cache) SetFaultHook(hook func(orc.ChunkKey) bool) {
	if hook != nil {
		c.faults.Store(hook)
	}
}

// GetChunk returns the cached chunk for key, marking it most recently used.
// The returned bytes are shared and must be treated as immutable.
func (c *Cache) GetChunk(key orc.ChunkKey) ([]byte, bool) {
	if hook, _ := c.faults.Load().(func(orc.ChunkKey) bool); hook != nil && hook(key) {
		c.stats.Faults.Add(1)
		c.stats.Misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.stats.Misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	data := el.Value.(*cacheEntry).data
	c.mu.Unlock()
	c.stats.Hits.Add(1)
	c.stats.BytesSaved.Add(int64(len(data)))
	return data, true
}

// PutChunk inserts a chunk, evicting least-recently-used unpinned entries
// until the budget is respected. A chunk that cannot fit even after
// evicting every unpinned entry is not inserted (the cache never exceeds
// its budget and never drops a pinned chunk to make room).
func (c *Cache) PutChunk(key orc.ChunkKey, data []byte) {
	size := int64(len(data))
	if c.budget > 0 && size > c.budget {
		c.stats.Rejected.Add(1)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Re-insert of an existing key: refresh data and recency.
		e := el.Value.(*cacheEntry)
		c.bytes += size - int64(len(e.data))
		e.data = data
		c.lru.MoveToFront(el)
		c.evictLocked(el)
		return
	}
	if !c.makeRoomLocked(size) {
		c.stats.Rejected.Add(1)
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: key, data: data})
	c.entries[key] = el
	c.bytes += size
	c.stats.Inserts.Add(1)
}

// makeRoomLocked evicts unpinned LRU entries until size more bytes fit.
// It reports whether the space was found.
func (c *Cache) makeRoomLocked(size int64) bool {
	if c.budget <= 0 {
		return true
	}
	for c.bytes+size > c.budget {
		victim := c.oldestUnpinnedLocked(nil)
		if victim == nil {
			return false
		}
		c.removeLocked(victim)
		c.stats.Evictions.Add(1)
	}
	return true
}

// evictLocked evicts unpinned LRU entries (other than keep) until the
// budget is respected; used after an in-place update grew an entry.
func (c *Cache) evictLocked(keep *list.Element) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		victim := c.oldestUnpinnedLocked(keep)
		if victim == nil {
			return
		}
		c.removeLocked(victim)
		c.stats.Evictions.Add(1)
	}
}

func (c *Cache) oldestUnpinnedLocked(skip *list.Element) *list.Element {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if el == skip {
			continue
		}
		if el.Value.(*cacheEntry).pins == 0 {
			return el
		}
	}
	return nil
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.data))
}

// InvalidatePath drops every cached chunk whose file lives under the given
// path prefix (a table's warehouse directory), returning how many were
// dropped. Called through the unified write-tracking path when a
// transaction commits to (or a loader rewrites) a table, so a recreated or
// compacted table never serves chunks from a dead file that happens to
// reuse a path. Pinned chunks are dropped from the index too — the pinning
// reader keeps its bytes alive, but no later lookup can see them.
func (c *Cache) InvalidatePath(prefix string) int {
	if c == nil || prefix == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*list.Element
	for key, el := range c.entries {
		if key.Path == prefix || strings.HasPrefix(key.Path, prefix+"/") {
			victims = append(victims, el)
		}
	}
	for _, el := range victims {
		c.removeLocked(el)
	}
	c.stats.Invalidations.Add(int64(len(victims)))
	return len(victims)
}

// Pin marks the chunk as non-evictable until a matching Unpin. Pinning a
// missing key is a no-op returning false.
func (c *Cache) Pin(key orc.ChunkKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	el.Value.(*cacheEntry).pins++
	return true
}

// Unpin releases one pin of the chunk.
func (c *Cache) Unpin(key orc.ChunkKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		if e := el.Value.(*cacheEntry); e.pins > 0 {
			e.pins--
		}
	}
}

// Snapshot copies the current counter values and occupancy.
func (c *Cache) Snapshot() CacheSnapshot {
	var out CacheSnapshot
	obs.ReadStruct(&out, &c.stats)
	c.mu.Lock()
	out.BytesCached = c.bytes
	out.Entries = int64(c.lru.Len())
	c.mu.Unlock()
	return out
}
