package llap

import "testing"

func TestBuildCacheLRUEviction(t *testing.T) {
	c := NewBuildCache(2)
	c.Put("a", "t1", 1)
	c.Put("b", "t2", 2)
	// Touch a so b becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("c", "t3", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing after Put")
	}
	s := c.Snapshot()
	if s.Evictions != 1 || s.Puts != 3 {
		t.Errorf("snapshot = %+v, want 1 eviction, 3 puts", s)
	}
}

func TestBuildCacheInvalidateTable(t *testing.T) {
	c := NewBuildCache(8)
	c.Put("k1", "dim", 1)
	c.Put("k2", "dim", 2)
	c.Put("k3", "other", 3)
	c.InvalidateTable("dim")
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived invalidation of its table")
	}
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 survived invalidation of its table")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Error("k3 dropped by invalidation of an unrelated table")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if s := c.Snapshot(); s.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", s.Invalidations)
	}
	// Invalidating an absent table is a no-op.
	c.InvalidateTable("missing")
}

func TestBuildCacheUpdateInPlace(t *testing.T) {
	c := NewBuildCache(2)
	c.Put("k", "t", 1)
	c.Put("k", "t", 2)
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Errorf("value after re-Put = %v, want 2", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestBuildCacheNilSafe(t *testing.T) {
	var c *BuildCache
	if _, ok := c.Get("k"); ok {
		t.Error("nil Get returned ok")
	}
	c.Put("k", "t", 1)
	c.InvalidateTable("t")
	if c.Len() != 0 {
		t.Error("nil Len != 0")
	}
	if c.Stats() != nil {
		t.Error("nil Stats != nil")
	}
	_ = c.Snapshot()
}
