// buildcache.go caches map-join build-side hash tables in the daemon,
// keyed by (table, snapshot version, build chain, join keys). Because the
// daemon outlives queries, a warm star join skips the small-table scans
// and hash builds entirely; a write to a table invalidates every cached
// build over it. Values are opaque to this package (the executor stores
// *exec.HashTable) so llap stays decoupled from the row engine.
package llap

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// BuildCacheStats counts build-cache activity.
type BuildCacheStats struct {
	Hits          atomic.Int64
	Misses        atomic.Int64
	Puts          atomic.Int64
	Evictions     atomic.Int64
	Invalidations atomic.Int64 // entries dropped by table writes
}

// BuildCacheSnapshot is an immutable copy of BuildCacheStats.
type BuildCacheSnapshot struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	Invalidations int64
}

// BuildCache is an entry-count-bounded LRU of built hash tables with a
// per-table index for invalidation.
type BuildCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recent; values are *buildEntry
	byKey   map[string]*list.Element
	byTable map[string]map[string]struct{} // table -> keys cached for it
	stats   BuildCacheStats
}

type buildEntry struct {
	key   string
	table string
	val   any
}

// NewBuildCache creates a cache bounded to max entries.
func NewBuildCache(max int) *BuildCache {
	return &BuildCache{
		max:     max,
		lru:     list.New(),
		byKey:   make(map[string]*list.Element),
		byTable: make(map[string]map[string]struct{}),
	}
}

// Get returns the cached build for key, refreshing its recency.
func (c *BuildCache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.stats.Misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits.Add(1)
	return el.Value.(*buildEntry).val, true
}

// Put stores a built table under key, attributed to table for
// invalidation, evicting the least recently used entry if full.
func (c *BuildCache) Put(key, table string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*buildEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.max {
		c.removeLocked(c.lru.Back())
		c.stats.Evictions.Add(1)
	}
	el := c.lru.PushFront(&buildEntry{key: key, table: table, val: val})
	c.byKey[key] = el
	keys := c.byTable[table]
	if keys == nil {
		keys = make(map[string]struct{})
		c.byTable[table] = keys
	}
	keys[key] = struct{}{}
	c.stats.Puts.Add(1)
}

// InvalidateTable drops every build cached over table (called on table
// writes so stale snapshots are never served).
func (c *BuildCache) InvalidateTable(table string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.byTable[table] {
		if el, ok := c.byKey[key]; ok {
			c.removeLocked(el)
			c.stats.Invalidations.Add(1)
		}
	}
}

func (c *BuildCache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	ent := el.Value.(*buildEntry)
	c.lru.Remove(el)
	delete(c.byKey, ent.key)
	if keys := c.byTable[ent.table]; keys != nil {
		delete(keys, ent.key)
		if len(keys) == 0 {
			delete(c.byTable, ent.table)
		}
	}
}

// Len returns the number of cached builds.
func (c *BuildCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats exposes the live counters for registry adoption.
func (c *BuildCache) Stats() *BuildCacheStats {
	if c == nil {
		return nil
	}
	return &c.stats
}

// Snapshot copies the counters.
func (c *BuildCache) Snapshot() BuildCacheSnapshot {
	var out BuildCacheSnapshot
	if c != nil {
		obs.ReadStruct(&out, &c.stats)
	}
	return out
}
