package llap

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/orc"
)

// Config sizes a daemon.
type Config struct {
	// Workers is the number of persistent executor goroutines (LLAP's
	// fixed-size executor pool). Default 4.
	Workers int
	// QueueDepth is the admission-queue capacity: tasks waiting beyond the
	// ones executors are running. Submit rejects when it is full (LLAP's AM
	// admission control); Execute waits. Default 64.
	QueueDepth int
	// CacheBytes is the chunk-cache byte budget. Default 64 MiB;
	// negative disables the data cache.
	CacheBytes int64
	// MetaEntries bounds the metadata cache. Default 1024; negative
	// disables the metadata cache.
	MetaEntries int
	// BuildEntries bounds the map-join build-side cache (built hash
	// tables keyed by table snapshot + join keys). Default 64; negative
	// disables it.
	BuildEntries int
	// CacheFaultHook, when set, injects chunk-cache lookup faults (see
	// internal/faultinject): a lookup for which it returns true is treated
	// as a miss, so the reader degrades to a direct DFS read instead of
	// failing the query.
	CacheFaultHook func(orc.ChunkKey) bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MetaEntries == 0 {
		c.MetaEntries = 1024
	}
	if c.BuildEntries == 0 {
		c.BuildEntries = 64
	}
	return c
}

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity.
var ErrQueueFull = errors.New("llap: admission queue full")

// ErrClosed is returned when submitting to a closed daemon.
var ErrClosed = errors.New("llap: daemon closed")

// DaemonStats aggregates executor-pool accounting.
type DaemonStats struct {
	Submitted     atomic.Int64
	Rejected      atomic.Int64
	Executed      atomic.Int64
	MaxConcurrent atomic.Int64 // high-water mark of simultaneously running tasks
}

// DaemonSnapshot is an immutable copy of DaemonStats.
type DaemonSnapshot struct {
	Submitted     int64
	Rejected      int64
	Executed      int64
	MaxConcurrent int64 `obs:",gauge"` // high-water mark, not a delta
}

// Daemon is a persistent executor pool with an admission queue and the
// shared caches. Unlike the per-query task slots of the MapReduce and Tez
// modes, its workers outlive queries: a query running in ModeLLAP pays no
// worker start cost and shares cache contents with every query before it.
type Daemon struct {
	cfg     Config
	chunks  *Cache
	meta    *MetaCache
	builds  *BuildCache
	caches  orc.Caches
	tasks   chan *task
	wg      sync.WaitGroup
	running atomic.Int64
	stats   DaemonStats

	mu     sync.RWMutex // guards closed vs. sends on tasks
	closed bool
}

type task struct {
	fn   func() error
	done chan error
}

// NewDaemon starts the worker pool.
func NewDaemon(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:   cfg,
		tasks: make(chan *task, cfg.QueueDepth),
	}
	if cfg.CacheBytes > 0 {
		d.chunks = NewCache(cfg.CacheBytes)
		d.chunks.SetFaultHook(cfg.CacheFaultHook)
		d.caches.Chunks = d.chunks
	}
	if cfg.MetaEntries > 0 {
		d.meta = NewMetaCache(cfg.MetaEntries)
		d.caches.Meta = d.meta
	}
	if cfg.BuildEntries > 0 {
		d.builds = NewBuildCache(cfg.BuildEntries)
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Daemon) Config() Config { return d.cfg }

// Caches returns the cache hooks to hand to ORC readers. Fields are nil for
// disabled caches.
func (d *Daemon) Caches() *orc.Caches { return &d.caches }

// ChunkCache returns the data cache, or nil when disabled.
func (d *Daemon) ChunkCache() *Cache { return d.chunks }

// MetaCache returns the metadata cache, or nil when disabled.
func (d *Daemon) MetaCache() *MetaCache { return d.meta }

// Builds returns the map-join build-side cache, or nil when disabled.
func (d *Daemon) Builds() *BuildCache { return d.builds }

// Stats exposes the live pool counters so they can be registered into an
// obs.Registry; use Snapshot for an immutable copy.
func (d *Daemon) Stats() *DaemonStats { return &d.stats }

func (d *Daemon) worker() {
	defer d.wg.Done()
	for t := range d.tasks {
		n := d.running.Add(1)
		for {
			max := d.stats.MaxConcurrent.Load()
			if n <= max || d.stats.MaxConcurrent.CompareAndSwap(max, n) {
				break
			}
		}
		err := t.fn()
		d.running.Add(-1)
		d.stats.Executed.Add(1)
		t.done <- err
	}
}

// enqueue places a task on the admission queue. When block is false and the
// queue is full, it returns ErrQueueFull without waiting. A blocking caller
// whose ctx is cancelled while waiting for admission gives up with
// ctx.Err() instead of holding its spot.
func (d *Daemon) enqueue(ctx context.Context, t *task, block bool) error {
	// The read lock spans the channel send so Close cannot close the
	// channel mid-send; workers keep draining until Close wins the write
	// lock, so a blocked send always completes or is abandoned via ctx.
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if block {
		select {
		case d.tasks <- t:
			d.stats.Submitted.Add(1)
			return nil
		case <-ctx.Done():
			d.stats.Rejected.Add(1)
			return ctx.Err()
		}
	}
	select {
	case d.tasks <- t:
		d.stats.Submitted.Add(1)
		return nil
	default:
		d.stats.Rejected.Add(1)
		return ErrQueueFull
	}
}

// Execute runs fn on a pool worker and waits for it, queueing (and, when
// the queue is full, waiting for admission) as needed.
func (d *Daemon) Execute(fn func() error) error {
	return d.ExecuteCtx(context.Background(), fn)
}

// ExecuteCtx is Execute with cancellation: a cancelled caller stops waiting
// — whether it is queued for admission on a full queue or its task is
// already running — and returns ctx.Err(). An admitted task the caller
// abandoned still runs to completion on its worker (the pool owns it), but
// nobody waits for it; its buffered done channel absorbs the result.
func (d *Daemon) ExecuteCtx(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := &task{fn: fn, done: make(chan error, 1)}
	if err := d.enqueue(ctx, t, true); err != nil {
		return err
	}
	select {
	case err := <-t.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit enqueues fn without waiting for execution. It returns a wait
// function resolving to fn's error, or ErrQueueFull when admission control
// rejects the task.
func (d *Daemon) Submit(fn func() error) (wait func() error, err error) {
	t := &task{fn: fn, done: make(chan error, 1)}
	if err := d.enqueue(context.Background(), t, false); err != nil {
		return nil, err
	}
	return func() error { return <-t.done }, nil
}

// Close stops the workers after draining queued tasks. Further submissions
// fail with ErrClosed.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.tasks)
	d.mu.Unlock()
	d.wg.Wait()
}

// Snapshot copies the executor-pool counters.
func (d *Daemon) Snapshot() DaemonSnapshot {
	var out DaemonSnapshot
	obs.ReadStruct(&out, &d.stats)
	return out
}
