package llap

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/orc"
)

// Config sizes a daemon.
type Config struct {
	// Workers is the number of persistent executor goroutines (LLAP's
	// fixed-size executor pool). Default 4.
	Workers int
	// QueueDepth is the admission-queue capacity: tasks waiting beyond the
	// ones executors are running. Submit rejects when it is full (LLAP's AM
	// admission control); Execute waits. Default 64.
	QueueDepth int
	// CacheBytes is the chunk-cache byte budget. Default 64 MiB;
	// negative disables the data cache.
	CacheBytes int64
	// MetaEntries bounds the metadata cache. Default 1024; negative
	// disables the metadata cache.
	MetaEntries int
	// BuildEntries bounds the map-join build-side cache (built hash
	// tables keyed by table snapshot + join keys). Default 64; negative
	// disables it.
	BuildEntries int
	// CacheFaultHook, when set, injects chunk-cache lookup faults (see
	// internal/faultinject): a lookup for which it returns true is treated
	// as a miss, so the reader degrades to a direct DFS read instead of
	// failing the query.
	CacheFaultHook func(orc.ChunkKey) bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MetaEntries == 0 {
		c.MetaEntries = 1024
	}
	if c.BuildEntries == 0 {
		c.BuildEntries = 64
	}
	return c
}

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity.
var ErrQueueFull = errors.New("llap: admission queue full")

// ErrClosed is returned when submitting to a closed daemon.
var ErrClosed = errors.New("llap: daemon closed")

// tenantKey carries a tenant label through a context.
type tenantKey struct{}

// WithTenant labels a context with the tenant (session, resource pool) on
// whose behalf work is submitted. The daemon schedules fairly across
// tenants: a tenant flooding the queue cannot starve the others, because
// workers pick the next task from the tenant with the fewest running
// tasks. An unlabeled context is the "" tenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant label, or "" when absent.
func TenantFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// DaemonStats aggregates executor-pool accounting.
type DaemonStats struct {
	Submitted     atomic.Int64
	Rejected      atomic.Int64
	Executed      atomic.Int64
	MaxConcurrent atomic.Int64 // high-water mark of simultaneously running tasks
}

// DaemonSnapshot is an immutable copy of DaemonStats.
type DaemonSnapshot struct {
	Submitted     int64
	Rejected      int64
	Executed      int64
	MaxConcurrent int64 `obs:",gauge"` // high-water mark, not a delta
}

// Daemon is a persistent executor pool with an admission queue and the
// shared caches. Unlike the per-query task slots of the MapReduce and Tez
// modes, its workers outlive queries: a query running in ModeLLAP pays no
// worker start cost and shares cache contents with every query before it.
//
// The pool is shared fairly across tenants (see WithTenant): each tenant
// gets its own FIFO queue, and a free worker serves the nonempty queue of
// the tenant with the fewest tasks currently running (round-robin among
// ties). One session's burst therefore queues behind its own earlier
// tasks, not in front of everyone else's.
type Daemon struct {
	cfg     Config
	chunks  *Cache
	meta    *MetaCache
	builds  *BuildCache
	caches  orc.Caches
	space   chan struct{} // queue-capacity tokens; one held per queued task
	wg      sync.WaitGroup
	running atomic.Int64
	stats   DaemonStats

	mu        sync.Mutex
	cond      *sync.Cond         // signaled when a task is queued or the daemon closes
	queues    map[string][]*task // per-tenant FIFO admission queues
	rr        []string           // tenants with queued tasks, in round-robin order
	runningBy map[string]int     // running tasks per tenant
	queued    int                // total queued tasks across tenants
	closed    bool
}

type task struct {
	tenant string
	fn     func() error
	done   chan error
}

// NewDaemon starts the worker pool.
func NewDaemon(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:       cfg,
		space:     make(chan struct{}, cfg.QueueDepth),
		queues:    map[string][]*task{},
		runningBy: map[string]int{},
	}
	d.cond = sync.NewCond(&d.mu)
	if cfg.CacheBytes > 0 {
		d.chunks = NewCache(cfg.CacheBytes)
		d.chunks.SetFaultHook(cfg.CacheFaultHook)
		d.caches.Chunks = d.chunks
	}
	if cfg.MetaEntries > 0 {
		d.meta = NewMetaCache(cfg.MetaEntries)
		d.caches.Meta = d.meta
	}
	if cfg.BuildEntries > 0 {
		d.builds = NewBuildCache(cfg.BuildEntries)
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Daemon) Config() Config { return d.cfg }

// Caches returns the cache hooks to hand to ORC readers. Fields are nil for
// disabled caches.
func (d *Daemon) Caches() *orc.Caches { return &d.caches }

// ChunkCache returns the data cache, or nil when disabled.
func (d *Daemon) ChunkCache() *Cache { return d.chunks }

// MetaCache returns the metadata cache, or nil when disabled.
func (d *Daemon) MetaCache() *MetaCache { return d.meta }

// Builds returns the map-join build-side cache, or nil when disabled.
func (d *Daemon) Builds() *BuildCache { return d.builds }

// Stats exposes the live pool counters so they can be registered into an
// obs.Registry; use Snapshot for an immutable copy.
func (d *Daemon) Stats() *DaemonStats { return &d.stats }

// Alive reports whether the daemon is accepting work (the admin plane's
// readiness probe: a closed daemon fails /readyz).
func (d *Daemon) Alive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.closed
}

// InvalidateTable drops everything every cache tier holds for one table —
// map-join builds keyed by the table name, chunk-cache entries and
// metadata-cache entries keyed by files under the table's warehouse path.
// This is the single write-tracking entry point: a committed transaction
// (or a bulk load) invalidates all tiers through one call, exactly once,
// instead of each tier growing its own per-table hook.
func (d *Daemon) InvalidateTable(name, path string) {
	d.builds.InvalidateTable(name)
	d.chunks.InvalidatePath(path)
	d.meta.InvalidatePath(path)
}

func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for d.queued == 0 && !d.closed {
			d.cond.Wait()
		}
		if d.queued == 0 {
			// closed and drained
			d.mu.Unlock()
			return
		}
		t := d.pickLocked()
		d.runningBy[t.tenant]++
		d.queued--
		d.mu.Unlock()
		<-d.space // the task left the queue; free its capacity token

		n := d.running.Add(1)
		for {
			max := d.stats.MaxConcurrent.Load()
			if n <= max || d.stats.MaxConcurrent.CompareAndSwap(max, n) {
				break
			}
		}
		err := t.fn()
		d.running.Add(-1)
		d.stats.Executed.Add(1)

		d.mu.Lock()
		if d.runningBy[t.tenant]--; d.runningBy[t.tenant] == 0 {
			delete(d.runningBy, t.tenant)
		}
		d.mu.Unlock()
		t.done <- err
	}
}

// pickLocked dequeues the next task under fair sharing: the head of the
// nonempty queue whose tenant has the fewest running tasks, round-robin
// among ties (the winner's tenant rotates to the back). Caller holds d.mu
// with d.queued > 0.
func (d *Daemon) pickLocked() *task {
	best := 0
	for i := 1; i < len(d.rr); i++ {
		if d.runningBy[d.rr[i]] < d.runningBy[d.rr[best]] {
			best = i
		}
	}
	tenant := d.rr[best]
	q := d.queues[tenant]
	t := q[0]
	if len(q) == 1 {
		delete(d.queues, tenant)
		d.rr = append(d.rr[:best], d.rr[best+1:]...)
	} else {
		d.queues[tenant] = q[1:]
		// Rotate the served tenant to the back so ties break round-robin.
		d.rr = append(append(d.rr[:best], d.rr[best+1:]...), tenant)
	}
	return t
}

// enqueue places a task on its tenant's admission queue. When block is
// false and the queue is full, it returns ErrQueueFull without waiting. A
// blocking caller whose ctx is cancelled while waiting for admission gives
// up with ctx.Err() instead of holding its spot.
func (d *Daemon) enqueue(ctx context.Context, t *task, block bool) error {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		d.stats.Rejected.Add(1)
		return ErrClosed
	}
	if block {
		select {
		case d.space <- struct{}{}:
		case <-ctx.Done():
			d.stats.Rejected.Add(1)
			return ctx.Err()
		}
	} else {
		select {
		case d.space <- struct{}{}:
		default:
			d.stats.Rejected.Add(1)
			return ErrQueueFull
		}
	}
	d.mu.Lock()
	if d.closed {
		// Lost the race with Close; give the token back.
		d.mu.Unlock()
		<-d.space
		d.stats.Rejected.Add(1)
		return ErrClosed
	}
	q := d.queues[t.tenant]
	if len(q) == 0 {
		d.rr = append(d.rr, t.tenant)
	}
	d.queues[t.tenant] = append(q, t)
	d.queued++
	d.cond.Signal()
	d.mu.Unlock()
	d.stats.Submitted.Add(1)
	return nil
}

// QueueLengths reports the queued tasks per tenant (empty tenants absent);
// introspection for tests and the server's \pools display.
func (d *Daemon) QueueLengths() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.queues))
	for tenant, q := range d.queues {
		out[tenant] = len(q)
	}
	return out
}

// Execute runs fn on a pool worker and waits for it, queueing (and, when
// the queue is full, waiting for admission) as needed.
func (d *Daemon) Execute(fn func() error) error {
	return d.ExecuteCtx(context.Background(), fn)
}

// ExecuteCtx is Execute with cancellation: a cancelled caller stops waiting
// — whether it is queued for admission on a full queue or its task is
// already running — and returns ctx.Err(). An admitted task the caller
// abandoned still runs to completion on its worker (the pool owns it), but
// nobody waits for it; its buffered done channel absorbs the result.
func (d *Daemon) ExecuteCtx(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := &task{tenant: TenantFrom(ctx), fn: fn, done: make(chan error, 1)}
	if err := d.enqueue(ctx, t, true); err != nil {
		return err
	}
	select {
	case err := <-t.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit enqueues fn without waiting for execution. It returns a wait
// function resolving to fn's error, or ErrQueueFull when admission control
// rejects the task.
func (d *Daemon) Submit(fn func() error) (wait func() error, err error) {
	t := &task{fn: fn, done: make(chan error, 1)}
	if err := d.enqueue(context.Background(), t, false); err != nil {
		return nil, err
	}
	return func() error { return <-t.done }, nil
}

// Close stops the workers after draining queued tasks. Further submissions
// fail with ErrClosed.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// Snapshot copies the executor-pool counters.
func (d *Daemon) Snapshot() DaemonSnapshot {
	var out DaemonSnapshot
	obs.ReadStruct(&out, &d.stats)
	return out
}
