package llap

import (
	"testing"

	"repro/internal/orc"
	"repro/internal/orc/stream"
)

func TestInvalidatePathDropsOnlyTableEntries(t *testing.T) {
	c := NewCache(1 << 20)
	mk := func(path string, stripe int) orc.ChunkKey {
		return orc.ChunkKey{Path: path, Stripe: stripe, Column: 1, Stream: stream.Data, Group: 0}
	}
	c.PutChunk(mk("/warehouse/t/part-00000", 0), []byte("aaaa"))
	c.PutChunk(mk("/warehouse/t/delta_1_1/part-00000", 0), []byte("bbbb"))
	c.PutChunk(mk("/warehouse/tt/part-00000", 0), []byte("cccc")) // prefix-sibling table

	if n := c.InvalidatePath("/warehouse/t"); n != 2 {
		t.Fatalf("invalidated %d chunks, want 2", n)
	}
	if _, ok := c.GetChunk(mk("/warehouse/t/part-00000", 0)); ok {
		t.Fatal("table chunk survived invalidation")
	}
	if _, ok := c.GetChunk(mk("/warehouse/tt/part-00000", 0)); !ok {
		t.Fatal("sibling table's chunk was wrongly invalidated")
	}
	if got := c.Snapshot().Invalidations; got != 2 {
		t.Fatalf("Invalidations = %d, want 2", got)
	}
}

func TestMetaCacheInvalidatePath(t *testing.T) {
	m := NewMetaCache(16)
	m.PutMeta("/warehouse/t/part-00000", 1)
	m.PutMeta("/warehouse/t/part-00000\x00stripe\x000", 2)
	m.PutMeta("/warehouse/tt/part-00000", 3)
	if n := m.InvalidatePath("/warehouse/t"); n != 2 {
		t.Fatalf("invalidated %d meta entries, want 2", n)
	}
	if _, ok := m.GetMeta("/warehouse/tt/part-00000"); !ok {
		t.Fatal("sibling table's metadata was wrongly invalidated")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
}

func TestDaemonInvalidateTableHitsAllTiers(t *testing.T) {
	d := NewDaemon(Config{Workers: 1})
	defer d.Close()
	key := orc.ChunkKey{Path: "/warehouse/t/part-00000", Column: 1, Stream: stream.Data}
	d.ChunkCache().PutChunk(key, []byte("data"))
	d.MetaCache().PutMeta("/warehouse/t/part-00000", 7)
	d.Builds().Put("t@v1|chain|keys=k", "t", "build")

	d.InvalidateTable("t", "/warehouse/t")

	if _, ok := d.ChunkCache().GetChunk(key); ok {
		t.Fatal("chunk survived InvalidateTable")
	}
	if _, ok := d.MetaCache().GetMeta("/warehouse/t/part-00000"); ok {
		t.Fatal("metadata survived InvalidateTable")
	}
	if _, ok := d.Builds().Get("t@v1|chain|keys=k"); ok {
		t.Fatal("build survived InvalidateTable")
	}
}
