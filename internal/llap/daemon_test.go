package llap

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestDaemonBoundsConcurrency checks the pool never runs more than Workers
// tasks at once while queueing the rest.
func TestDaemonBoundsConcurrency(t *testing.T) {
	const workers = 3
	const tasks = 13
	d := NewDaemon(Config{Workers: workers, QueueDepth: tasks})
	defer d.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, tasks)
	var running, peak atomic.Int64
	waits := make([]func() error, 0, tasks)
	for i := 0; i < tasks; i++ {
		wait, err := d.Submit(func() error {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			started <- struct{}{}
			<-gate
			running.Add(-1)
			return nil
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waits = append(waits, wait)
	}
	// Exactly `workers` tasks start; the rest sit in the queue.
	for i := 0; i < workers; i++ {
		<-started
	}
	select {
	case <-started:
		t.Fatal("more tasks running than workers")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	for i, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if p := peak.Load(); p != workers {
		t.Fatalf("peak concurrency %d, want %d", p, workers)
	}
	s := d.Snapshot()
	if s.Executed != tasks || s.Submitted != tasks || s.MaxConcurrent != workers {
		t.Fatalf("stats %+v, want %d executed / %d submitted / max %d", s, tasks, tasks, workers)
	}
}

func TestSubmitRejectsWhenQueueFull(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 2})
	defer d.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := d.Submit(func() error {
		close(started)
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	var queued []func() error
	for i := 0; i < 2; i++ {
		w, err := d.Submit(func() error { return nil })
		if err != nil {
			t.Fatalf("Submit into non-full queue: %v", err)
		}
		queued = append(queued, w)
	}
	if _, err := d.Submit(func() error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit into full queue: err = %v, want ErrQueueFull", err)
	}
	if s := d.Snapshot(); s.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", s.Rejected)
	}
	close(gate)
	if err := blocker(); err != nil {
		t.Fatal(err)
	}
	for _, w := range queued {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExecuteWaitsForAdmission checks the blocking path queues past a full
// admission queue instead of rejecting.
func TestExecuteWaitsForAdmission(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 1})
	defer d.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := d.Submit(func() error {
		close(started)
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := d.Submit(func() error { return nil }); err != nil {
		t.Fatal(err) // fills the queue
	}
	executed := make(chan error, 1)
	go func() {
		executed <- d.Execute(func() error { return nil })
	}()
	select {
	case err := <-executed:
		t.Fatalf("Execute returned %v before admission was possible", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-executed; err != nil {
		t.Fatal(err)
	}
	if err := blocker(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonTaskError(t *testing.T) {
	d := NewDaemon(Config{Workers: 2})
	defer d.Close()
	want := errors.New("boom")
	if err := d.Execute(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Execute error = %v, want %v", err, want)
	}
}

func TestDaemonCloseDrainsAndRejects(t *testing.T) {
	d := NewDaemon(Config{Workers: 2, QueueDepth: 8})
	var ran atomic.Int64
	waits := make([]func() error, 0, 6)
	for i := 0; i < 6; i++ {
		w, err := d.Submit(func() error { ran.Add(1); return nil })
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
	}
	d.Close()
	for _, w := range waits {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	if n := ran.Load(); n != 6 {
		t.Fatalf("ran %d queued tasks after Close, want 6", n)
	}
	if err := d.Execute(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after Close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Submit(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}

func TestDaemonCachesWiring(t *testing.T) {
	d := NewDaemon(Config{})
	defer d.Close()
	caches := d.Caches()
	if caches.Chunks == nil || caches.Meta == nil {
		t.Fatal("default config should enable both caches")
	}
	if d.ChunkCache().Budget() != 64<<20 {
		t.Fatalf("default budget = %d, want 64 MiB", d.ChunkCache().Budget())
	}
	off := NewDaemon(Config{CacheBytes: -1, MetaEntries: -1})
	defer off.Close()
	if off.Caches().Chunks != nil || off.Caches().Meta != nil {
		t.Fatal("negative sizes should disable caches")
	}
}
