package llap

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/orc"
)

// TestDaemonBoundsConcurrency checks the pool never runs more than Workers
// tasks at once while queueing the rest.
func TestDaemonBoundsConcurrency(t *testing.T) {
	const workers = 3
	const tasks = 13
	d := NewDaemon(Config{Workers: workers, QueueDepth: tasks})
	defer d.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, tasks)
	var running, peak atomic.Int64
	waits := make([]func() error, 0, tasks)
	for i := 0; i < tasks; i++ {
		wait, err := d.Submit(func() error {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			started <- struct{}{}
			<-gate
			running.Add(-1)
			return nil
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waits = append(waits, wait)
	}
	// Exactly `workers` tasks start; the rest sit in the queue.
	for i := 0; i < workers; i++ {
		<-started
	}
	select {
	case <-started:
		t.Fatal("more tasks running than workers")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	for i, wait := range waits {
		if err := wait(); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if p := peak.Load(); p != workers {
		t.Fatalf("peak concurrency %d, want %d", p, workers)
	}
	s := d.Snapshot()
	if s.Executed != tasks || s.Submitted != tasks || s.MaxConcurrent != workers {
		t.Fatalf("stats %+v, want %d executed / %d submitted / max %d", s, tasks, tasks, workers)
	}
}

func TestSubmitRejectsWhenQueueFull(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 2})
	defer d.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := d.Submit(func() error {
		close(started)
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	var queued []func() error
	for i := 0; i < 2; i++ {
		w, err := d.Submit(func() error { return nil })
		if err != nil {
			t.Fatalf("Submit into non-full queue: %v", err)
		}
		queued = append(queued, w)
	}
	if _, err := d.Submit(func() error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit into full queue: err = %v, want ErrQueueFull", err)
	}
	if s := d.Snapshot(); s.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", s.Rejected)
	}
	close(gate)
	if err := blocker(); err != nil {
		t.Fatal(err)
	}
	for _, w := range queued {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExecuteWaitsForAdmission checks the blocking path queues past a full
// admission queue instead of rejecting.
func TestExecuteWaitsForAdmission(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 1})
	defer d.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := d.Submit(func() error {
		close(started)
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := d.Submit(func() error { return nil }); err != nil {
		t.Fatal(err) // fills the queue
	}
	executed := make(chan error, 1)
	go func() {
		executed <- d.Execute(func() error { return nil })
	}()
	select {
	case err := <-executed:
		t.Fatalf("Execute returned %v before admission was possible", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-executed; err != nil {
		t.Fatal(err)
	}
	if err := blocker(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonTaskError(t *testing.T) {
	d := NewDaemon(Config{Workers: 2})
	defer d.Close()
	want := errors.New("boom")
	if err := d.Execute(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Execute error = %v, want %v", err, want)
	}
}

func TestDaemonCloseDrainsAndRejects(t *testing.T) {
	d := NewDaemon(Config{Workers: 2, QueueDepth: 8})
	var ran atomic.Int64
	waits := make([]func() error, 0, 6)
	for i := 0; i < 6; i++ {
		w, err := d.Submit(func() error { ran.Add(1); return nil })
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
	}
	d.Close()
	for _, w := range waits {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	if n := ran.Load(); n != 6 {
		t.Fatalf("ran %d queued tasks after Close, want 6", n)
	}
	if err := d.Execute(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after Close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Submit(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}

func TestDaemonCachesWiring(t *testing.T) {
	d := NewDaemon(Config{})
	defer d.Close()
	caches := d.Caches()
	if caches.Chunks == nil || caches.Meta == nil {
		t.Fatal("default config should enable both caches")
	}
	if d.ChunkCache().Budget() != 64<<20 {
		t.Fatalf("default budget = %d, want 64 MiB", d.ChunkCache().Budget())
	}
	off := NewDaemon(Config{CacheBytes: -1, MetaEntries: -1})
	defer off.Close()
	if off.Caches().Chunks != nil || off.Caches().Meta != nil {
		t.Fatal("negative sizes should disable caches")
	}
}

// TestExecuteCtxCancelledWhileQueued: a caller waiting for admission on a
// full queue gives up when its context is cancelled instead of holding its
// spot forever.
func TestExecuteCtxCancelledWhileQueued(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 1, CacheBytes: -1, MetaEntries: -1})
	defer d.Close()
	block := make(chan struct{})
	// Occupy the single worker and fill the single queue slot.
	running := make(chan struct{})
	go d.Execute(func() error { close(running); <-block; return nil })
	<-running
	if _, err := d.Submit(func() error { return nil }); err != nil {
		t.Fatalf("filling the queue: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- d.ExecuteCtx(ctx, func() error { return nil }) }()
	// The call must be parked on admission, not done.
	select {
	case err := <-errc:
		t.Fatalf("ExecuteCtx returned %v before cancellation with a full queue", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled ExecuteCtx never returned")
	}
	close(block)
}

// TestExecuteCtxCancelledWhileRunning: a caller whose admitted task is
// still running stops waiting on cancellation; the task finishes on its
// worker without anyone blocked on it.
func TestExecuteCtxCancelledWhileRunning(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, CacheBytes: -1, MetaEntries: -1})
	started := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- d.ExecuteCtx(ctx, func() error { close(started); <-release; return nil })
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	d.Close() // waits for the abandoned task to drain; must not deadlock
}

// TestCacheFaultHookDegradesToMiss: an injected cache fault is served as a
// miss (and counted), never an error — the reader falls back to the DFS.
func TestCacheFaultHookDegradesToMiss(t *testing.T) {
	faulty := true
	d := NewDaemon(Config{
		CacheBytes:     1 << 20,
		MetaEntries:    -1,
		CacheFaultHook: func(orc.ChunkKey) bool { return faulty },
	})
	defer d.Close()
	c := d.ChunkCache()
	key := orc.ChunkKey{Path: "/t/f0", Column: 1}
	c.PutChunk(key, []byte("payload"))
	if _, ok := c.GetChunk(key); ok {
		t.Fatal("faulted lookup returned a hit")
	}
	faulty = false
	data, ok := c.GetChunk(key)
	if !ok || string(data) != "payload" {
		t.Fatal("entry lost after a faulted lookup; fault must only degrade the lookup")
	}
	s := c.Snapshot()
	if s.Faults != 1 {
		t.Errorf("Faults = %d, want 1", s.Faults)
	}
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("Misses = %d, Hits = %d; want 1 and 1", s.Misses, s.Hits)
	}
}

// TestFairSchedulingAcrossTenants: with tenant A flooding a one-worker
// pool's queue, tenant B's lone task is served within the first round of
// picks instead of waiting out A's whole backlog — a strictly FIFO pool
// would run it last.
func TestFairSchedulingAcrossTenants(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 16, CacheBytes: -1, MetaEntries: -1, BuildEntries: -1})
	defer d.Close()

	ctxA := WithTenant(context.Background(), "a")
	ctxB := WithTenant(context.Background(), "b")

	started := make(chan struct{})
	release := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		first <- d.ExecuteCtx(ctxA, func() error { close(started); <-release; return nil })
	}()
	<-started

	// Flood tenant A's queue, then append one tenant-B task. A strictly
	// FIFO pool would run all of A's backlog first.
	order := make(chan string, 8)
	var waits []chan error
	for i := 0; i < 6; i++ {
		done := make(chan error, 1)
		waits = append(waits, done)
		go func() { done <- d.ExecuteCtx(ctxA, func() error { order <- "a"; return nil }) }()
	}
	// Wait until A's backlog is actually queued so B arrives last.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d.QueueLengths()["a"] == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant a backlog never queued: %v", d.QueueLengths())
		}
		time.Sleep(time.Millisecond)
	}
	doneB := make(chan error, 1)
	go func() { doneB <- d.ExecuteCtx(ctxB, func() error { order <- "b"; return nil }) }()
	for {
		if d.QueueLengths()["b"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant b task never queued: %v", d.QueueLengths())
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first task: %v", err)
	}
	// Round-robin across the two tenants: b must appear within the first
	// two picks (FIFO would place it after all six of a's tasks).
	got := []string{<-order, <-order}
	if got[0] != "b" && got[1] != "b" {
		t.Fatalf("first two dequeued tenants = %v, want b among them (fair share must not starve b)", got)
	}
	if err := <-doneB; err != nil {
		t.Fatalf("tenant b task: %v", err)
	}
	for _, w := range waits {
		if err := <-w; err != nil {
			t.Fatalf("tenant a task: %v", err)
		}
	}
}

// TestTenantRoundRobinTieBreak: tenants with equal running counts are
// served round-robin, so three tenants with queued backlogs interleave
// instead of draining one queue at a time.
func TestTenantRoundRobinTieBreak(t *testing.T) {
	d := NewDaemon(Config{Workers: 1, QueueDepth: 32, CacheBytes: -1, MetaEntries: -1, BuildEntries: -1})
	defer d.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	hold := make(chan error, 1)
	go func() {
		hold <- d.ExecuteCtx(context.Background(), func() error { close(started); <-release; return nil })
	}()
	<-started

	tenants := []string{"x", "y", "z"}
	order := make(chan string, 9)
	var waits []chan error
	for round := 0; round < 3; round++ {
		for _, tn := range tenants {
			tn := tn
			done := make(chan error, 1)
			waits = append(waits, done)
			go func() {
				done <- d.ExecuteCtx(WithTenant(context.Background(), tn), func() error { order <- tn; return nil })
			}()
			// Queue in a deterministic arrival order.
			deadline := time.Now().Add(5 * time.Second)
			want := round + 1
			if round > 0 {
				want = round + 1
			}
			for d.QueueLengths()[tn] != want {
				if time.Now().After(deadline) {
					t.Fatalf("tenant %s never reached queue length %d: %v", tn, want, d.QueueLengths())
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	close(release)
	if err := <-hold; err != nil {
		t.Fatalf("hold task: %v", err)
	}
	for _, w := range waits {
		if err := <-w; err != nil {
			t.Fatalf("task: %v", err)
		}
	}
	// With one worker, tasks run one at a time: every consecutive window of
	// three served tasks must cover all three tenants.
	var seq []string
	for i := 0; i < 9; i++ {
		seq = append(seq, <-order)
	}
	for i := 0; i+3 <= 9; i += 3 {
		seen := map[string]bool{}
		for _, tn := range seq[i : i+3] {
			seen[tn] = true
		}
		if len(seen) != 3 {
			t.Fatalf("window %d not fair: %v (full order %v)", i/3, seq[i:i+3], seq)
		}
	}
}
