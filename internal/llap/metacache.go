package llap

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// MetaCache is a concurrency-safe, count-bounded LRU store of decoded ORC
// metadata (file tails, stripe footers, row indexes). It implements
// orc.MetaCache. Metadata entries are small and few per file, so the bound
// is a count, not bytes.
type MetaCache struct {
	max    int // <= 0 means unbounded
	hits   atomic.Int64
	misses atomic.Int64

	mu      sync.Mutex
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
}

type metaEntry struct {
	key string
	v   any
}

// NewMetaCache creates a metadata cache holding at most max entries;
// max <= 0 means unbounded.
func NewMetaCache(max int) *MetaCache {
	return &MetaCache{
		max:     max,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// GetMeta returns the cached value for key, marking it most recently used.
func (c *MetaCache) GetMeta(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	v := el.Value.(*metaEntry).v
	c.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// PutMeta inserts or replaces the value for key, evicting the
// least-recently-used entry when the bound is exceeded.
func (c *MetaCache) PutMeta(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*metaEntry).v = v
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&metaEntry{key: key, v: v})
	c.entries[key] = el
	if c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*metaEntry).key)
	}
}

// InvalidatePath drops every metadata entry whose key (an ORC file path,
// optionally with a "\x00stripe\x00N" suffix) lives under the given path
// prefix, returning how many were dropped. Part of the unified per-table
// write-tracking invalidation (see Daemon.InvalidateTable).
func (c *MetaCache) InvalidatePath(prefix string) int {
	if c == nil || prefix == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*list.Element
	for key, el := range c.entries {
		path, _, _ := strings.Cut(key, "\x00")
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			victims = append(victims, el)
		}
	}
	for _, el := range victims {
		c.lru.Remove(el)
		delete(c.entries, el.Value.(*metaEntry).key)
	}
	return len(victims)
}

// Len returns the current entry count.
func (c *MetaCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Hits and Misses return the cumulative lookup counters.
func (c *MetaCache) Hits() int64   { return c.hits.Load() }
func (c *MetaCache) Misses() int64 { return c.misses.Load() }
