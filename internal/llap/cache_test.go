package llap

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/orc"
	"repro/internal/orc/stream"
)

func key(path string, stripe, col, group int) orc.ChunkKey {
	return orc.ChunkKey{Path: path, Stripe: stripe, Column: col, Stream: stream.Data, Group: group}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(1 << 20)
	k := key("/t/f0", 0, 1, 0)
	if _, ok := c.GetChunk(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutChunk(k, []byte("hello"))
	got, ok := c.GetChunk(k)
	if !ok || string(got) != "hello" {
		t.Fatalf("GetChunk = %q, %v", got, ok)
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 insert", s)
	}
	if s.BytesSaved != 5 || s.BytesCached != 5 || s.Entries != 1 {
		t.Fatalf("bytes %+v, want 5 saved / 5 cached / 1 entry", s)
	}
}

func TestCacheRespectsBudget(t *testing.T) {
	c := NewCache(100)
	for i := 0; i < 20; i++ {
		c.PutChunk(key("/t/f0", 0, i, 0), make([]byte, 30))
		if s := c.Snapshot(); s.BytesCached > 100 {
			t.Fatalf("after insert %d: %d bytes cached > budget 100", i, s.BytesCached)
		}
	}
	s := c.Snapshot()
	if s.Entries != 3 || s.BytesCached != 90 {
		t.Fatalf("final occupancy %d entries / %d bytes, want 3 / 90", s.Entries, s.BytesCached)
	}
	if s.Evictions != 17 {
		t.Fatalf("evictions = %d, want 17", s.Evictions)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(90)
	a, b, d := key("/f", 0, 0, 0), key("/f", 0, 1, 0), key("/f", 0, 2, 0)
	c.PutChunk(a, make([]byte, 30))
	c.PutChunk(b, make([]byte, 30))
	c.PutChunk(d, make([]byte, 30))
	c.GetChunk(a) // a becomes most recent; b is now LRU
	c.PutChunk(key("/f", 0, 3, 0), make([]byte, 30))
	if _, ok := c.GetChunk(b); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []orc.ChunkKey{a, d} {
		if _, ok := c.GetChunk(k); !ok {
			t.Fatalf("entry %v evicted out of LRU order", k)
		}
	}
}

func TestCacheOversizeChunkRejected(t *testing.T) {
	c := NewCache(100)
	c.PutChunk(key("/f", 0, 0, 0), make([]byte, 40))
	c.PutChunk(key("/f", 0, 1, 0), make([]byte, 200))
	s := c.Snapshot()
	if s.Rejected != 1 || s.BytesCached != 40 || s.Entries != 1 {
		t.Fatalf("stats %+v, want oversize chunk rejected leaving 40 bytes", s)
	}
}

func TestCachePinnedNeverEvicted(t *testing.T) {
	c := NewCache(100)
	pinned := key("/f", 0, 0, 0)
	c.PutChunk(pinned, make([]byte, 60))
	if !c.Pin(pinned) {
		t.Fatal("Pin failed on present key")
	}
	// Flood with entries; only 40 unpinned bytes fit, so everything else
	// churns but the pinned chunk must stay.
	for i := 1; i < 30; i++ {
		c.PutChunk(key("/f", 0, i, 0), make([]byte, 40))
		if _, ok := c.GetChunk(pinned); !ok {
			t.Fatalf("pinned chunk evicted after insert %d", i)
		}
		if s := c.Snapshot(); s.BytesCached > 100 {
			t.Fatalf("budget exceeded: %d", s.BytesCached)
		}
	}
	// A chunk that cannot fit without evicting the pinned entry is refused.
	c.PutChunk(key("/g", 0, 0, 0), make([]byte, 80))
	if _, ok := c.GetChunk(key("/g", 0, 0, 0)); ok {
		t.Fatal("insert displacing a pinned chunk succeeded")
	}
	if _, ok := c.GetChunk(pinned); !ok {
		t.Fatal("pinned chunk lost")
	}
	c.Unpin(pinned)
	c.PutChunk(key("/g", 0, 0, 0), make([]byte, 80))
	if _, ok := c.GetChunk(key("/g", 0, 0, 0)); !ok {
		t.Fatal("insert failed after unpin freed space")
	}
}

// TestCacheConcurrent hammers the cache from many goroutines (run with
// -race) and checks the byte budget is never exceeded.
func TestCacheConcurrent(t *testing.T) {
	const budget = 64 << 10
	c := NewCache(budget)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(fmt.Sprintf("/t/f%d", g%2), i%5, 0, i%3)
				if data, ok := c.GetChunk(k); ok {
					_ = data[0] // cached bytes must stay readable
					continue
				}
				c.PutChunk(k, make([]byte, 128+(i%5)*512))
				if s := c.Snapshot(); s.BytesCached > budget {
					t.Errorf("budget exceeded: %d > %d", s.BytesCached, budget)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.BytesCached > budget {
		t.Fatalf("final bytes %d > budget %d", s.BytesCached, budget)
	}
	if s.Hits == 0 || s.Inserts == 0 {
		t.Fatalf("expected hits and inserts, got %+v", s)
	}
}

func TestMetaCacheBoundAndLRU(t *testing.T) {
	c := NewMetaCache(3)
	for i := 0; i < 5; i++ {
		c.PutMeta(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.GetMeta("k0"); ok {
		t.Fatal("oldest entry survived bound")
	}
	if v, ok := c.GetMeta("k4"); !ok || v.(int) != 4 {
		t.Fatalf("GetMeta(k4) = %v, %v", v, ok)
	}
	// k2 is now LRU (k3 and k4 touched more recently via insert order, k4
	// also via Get); inserting one more evicts k2.
	c.GetMeta("k3")
	c.PutMeta("k5", 5)
	if _, ok := c.GetMeta("k2"); ok {
		t.Fatal("LRU meta entry survived eviction")
	}
	if c.Hits() == 0 || c.Misses() == 0 {
		t.Fatal("expected nonzero hit and miss counters")
	}
}

func TestMetaCacheConcurrent(t *testing.T) {
	c := NewMetaCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%d", (g+i)%24)
				if _, ok := c.GetMeta(k); !ok {
					c.PutMeta(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Fatalf("Len = %d > bound 16", n)
	}
}
