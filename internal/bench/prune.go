// prune.go drives E18, the physical-layout experiment (DESIGN.md S27):
// partition pruning, hash bucketing and HAIL-style replica-divergent
// indexing, measured as bytes *not read* and bytes *not shuffled* rather
// than raw scan speed. Three phases: a selective scan and a star join with
// the layout optimizations off vs on (SS-DB q1 / TPC-DS q27 shapes), the
// same join executed as a shuffle join vs a bucket map join vs an SMB
// join, and replica-routing hit rates with every replica up vs one
// divergent replica lost. Every arm's rows are cross-checked against its
// counterpart — a layout optimization that changes an answer is a bug,
// not a speedup.
package bench

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/fileformat"
	"repro/internal/mapred"
	"repro/internal/optimizer"
	"repro/internal/types"
)

// PruneReport is E18's outcome.
type PruneReport struct {
	FactRows   int
	Partitions int
	Buckets    int

	// Selective scan (SS-DB q1 shape): one day, one uid. Three arms — the
	// zero-optimization baseline, everything on except the layout axes
	// (ORC pushdown skips inside files), everything on (pruning never
	// opens the files at all).
	ScanBytesBase, ScanBytesPush, ScanBytesLayout int64
	ScanBase, ScanPush, ScanLayout                time.Duration

	// Star join (TPC-DS q27 shape): pruned fact joined to a co-bucketed
	// dimension with a grouped aggregate on top; same three arms.
	StarBytesBase, StarBytesPush, StarBytesLayout int64
	StarBase, StarPush, StarLayout                time.Duration

	// The same logical join under three physical strategies.
	ShuffleJoinBytes, BucketMapBytes, SMBBytes int64
	ShuffleJoinTime, BucketMapTime, SMBTime    time.Duration

	// Replica routing over the divergently replicated table: hit rate =
	// routed hits / (hits + fallbacks) across the query set, with all
	// replicas up and with replica 1 (the uid-sorted copies) lost.
	RoutedQueries    int
	HitRateAllUp     float64
	HitRateOneLost   float64
	FallbacksOneLost int64

	// Consistent is false if any arm's rows disagreed with its counterpart.
	Consistent bool
}

const (
	pruneDays    = 8
	pruneBuckets = 8
	pruneUIDs    = 64
)

// layoutOnOff returns the fully optimized configuration with just the
// three layout axes toggled, so the off arm differs from the on arm in
// nothing but the layout optimizations.
func layoutOnOff(on bool) optimizer.Options {
	o := optimizer.AllOn()
	o.PartitionPruning = on
	o.BucketJoin = on
	o.ReplicaRouting = on
	return o
}

func pruneDay(i int) string { return fmt.Sprintf("2014-01-%02d", i%pruneDays+1) }

// pruneSalesRow decorrelates day and uid (uid cycles within each day) so
// every (day, uid) pair occurs and a conjunctive predicate has matches.
func pruneSalesRow(i int) types.Row {
	return types.Row{pruneDay(i / pruneUIDs), int64(i % pruneUIDs), int64(i % 7)}
}

// newPruneBenchDriver builds the E18 warehouse: a partitioned+bucketed
// fact table, the same rows flat (the off-arm strawman is the same table
// scanned without pruning, but the flat copy anchors result checks), an
// SMB-compatible copy, a co-bucketed sorted dimension, and a
// replica-divergent log table.
func newPruneBenchDriver(cfg EnvConfig, factRows int) (*core.Driver, *dfs.FS, error) {
	c := cfg.withDefaults()
	fs := dfs.New(dfs.WithBlockSize(8<<20), dfs.WithSimulatedDisk(c.DiskBandwidth, c.SeekLatency))
	engine := mapred.NewEngine(mapred.Config{Slots: 4, JobLaunchOverhead: c.LaunchOverhead})
	d := core.NewDriver(fs, engine, core.Config{
		DefaultFormat: fileformat.ORC,
		Opt:           layoutOnOff(true),
	})
	load := func(ddl, name string, n int, row func(int) types.Row) error {
		if _, err := d.Run(ddl); err != nil {
			return err
		}
		l, err := d.Loader(name)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := l.Write(row(i)); err != nil {
				return err
			}
		}
		return l.Close()
	}
	steps := []func() error{
		func() error {
			return load(fmt.Sprintf(`CREATE TABLE sales (ds string, uid bigint, qty bigint)
				PARTITIONED BY (ds) CLUSTERED BY (uid) INTO %d BUCKETS STORED AS orc`, pruneBuckets),
				"sales", factRows, pruneSalesRow)
		},
		func() error {
			return load(fmt.Sprintf(`CREATE TABLE sales_s (ds string, uid bigint, qty bigint)
				CLUSTERED BY (uid) SORTED BY (uid) INTO %d BUCKETS STORED AS orc`, pruneBuckets),
				"sales_s", factRows, pruneSalesRow)
		},
		func() error {
			return load(fmt.Sprintf(`CREATE TABLE users (uid bigint, name string)
				CLUSTERED BY (uid) SORTED BY (uid) INTO %d BUCKETS STORED AS orc`, pruneBuckets),
				"users", pruneUIDs, func(i int) types.Row {
					return types.Row{int64(i), fmt.Sprintf("user-%03d", i)}
				})
		},
		func() error {
			return load(`CREATE TABLE logs (ds string, uid bigint, val bigint)
				REPLICATED BY (ds, uid) STORED AS orc`,
				"logs", factRows/2, func(i int) types.Row {
					return types.Row{pruneDay(i / pruneUIDs), int64(i % pruneUIDs), int64(i)}
				})
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			d.Close()
			return nil, nil, err
		}
	}
	return d, fs, nil
}

// pruneRun executes one query under the given optimizer options, runs
// times, returning the sorted rows, the per-run scan stats (identical
// across runs) and the median latency.
func pruneRun(d *core.Driver, opt optimizer.Options, query string, runs int) ([]types.Row, core.ExecStats, time.Duration, error) {
	conf := d.Config()
	conf.Opt = opt
	var lats []time.Duration
	var res *core.Result
	for i := 0; i < runs; i++ {
		start := time.Now()
		r, err := d.RunWith(context.Background(), conf, query)
		if err != nil {
			return nil, core.ExecStats{}, 0, fmt.Errorf("%s: %w", query, err)
		}
		lats = append(lats, time.Since(start))
		res = r
	}
	rows := append([]types.Row(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool { return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j]) })
	return rows, res.Stats, quantileDur(lats, 0.50), nil
}

// RunPrune runs E18 with factRows rows in the fact tables, runs
// repetitions per timing measurement.
func RunPrune(cfg EnvConfig, factRows, runs int) (*PruneReport, error) {
	d, fs, err := newPruneBenchDriver(cfg, factRows)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	rep := &PruneReport{
		FactRows:   factRows,
		Partitions: pruneDays,
		Buckets:    pruneBuckets,
		Consistent: true,
	}

	// Phases 1 and 2: the scan-reduction arms. The baseline is the
	// zero-optimization original-Hive path; the pushdown arm turns
	// everything on except the layout axes (ORC statistics skip stripes
	// and index groups *inside* every file); the layout arm additionally
	// prunes partitions and pins buckets (unqualified files are never
	// opened at all).
	arms := []struct {
		name string
		opt  optimizer.Options
	}{
		{"baseline", optimizer.Options{}},
		{"pushdown", layoutOnOff(false)},
		{"layout", layoutOnOff(true)},
	}
	// Phase 1: selective scan, SS-DB q1 shape — one partition of eight and
	// one bucket of eight survive pruning.
	scanQ := `SELECT uid, qty FROM sales WHERE ds = '2014-01-03' AND uid = 7`
	// Phase 2: star join, TPC-DS q27 shape — partition predicate on the
	// fact, bucket join to the dimension, grouped aggregate on top.
	starQ := `SELECT name, COUNT(*), SUM(qty) FROM sales JOIN users ON sales.uid = users.uid
		WHERE ds = '2014-01-03' GROUP BY name`
	measure := func(query string, bytes [3]*int64, lat [3]*time.Duration) error {
		var want []types.Row
		for i, arm := range arms {
			rows, stats, med, err := pruneRun(d, arm.opt, query, runs)
			if err != nil {
				return err
			}
			*bytes[i], *lat[i] = stats.TotalBytesRead, med
			if i == 0 {
				want = rows
			} else if !reflect.DeepEqual(want, rows) {
				rep.Consistent = false
			}
		}
		return nil
	}
	if err := measure(scanQ,
		[3]*int64{&rep.ScanBytesBase, &rep.ScanBytesPush, &rep.ScanBytesLayout},
		[3]*time.Duration{&rep.ScanBase, &rep.ScanPush, &rep.ScanLayout}); err != nil {
		return nil, err
	}
	if err := measure(starQ,
		[3]*int64{&rep.StarBytesBase, &rep.StarBytesPush, &rep.StarBytesLayout},
		[3]*time.Duration{&rep.StarBase, &rep.StarPush, &rep.StarLayout}); err != nil {
		return nil, err
	}

	// Phase 3: the same logical join as a shuffle join (zero optimizer
	// options — the classic reduce-side join), a bucket map join (sales is
	// bucketed but unsorted) and an SMB join (sales_s and users are both
	// bucketed and sorted on the key).
	joinQ := `SELECT sales.uid, qty, name FROM sales JOIN users ON sales.uid = users.uid`
	smbQ := `SELECT sales_s.uid, qty, name FROM sales_s JOIN users ON sales_s.uid = users.uid`
	want, shStats, shLat, err := pruneRun(d, optimizer.Options{}, joinQ, runs)
	if err != nil {
		return nil, err
	}
	rep.ShuffleJoinBytes, rep.ShuffleJoinTime = shStats.ShuffleBytes, shLat
	bmRows, bmStats, bmLat, err := pruneRun(d, layoutOnOff(true), joinQ, runs)
	if err != nil {
		return nil, err
	}
	rep.BucketMapBytes, rep.BucketMapTime = bmStats.ShuffleBytes, bmLat
	smbRows, smbStats, smbLat, err := pruneRun(d, layoutOnOff(true), smbQ, runs)
	if err != nil {
		return nil, err
	}
	rep.SMBBytes, rep.SMBTime = smbStats.ShuffleBytes, smbLat
	if !reflect.DeepEqual(want, bmRows) || !reflect.DeepEqual(want, smbRows) {
		rep.Consistent = false
	}

	// Phase 4: replica routing. Half the probe queries filter on ds (routed
	// to replica 0, sorted by ds), half on uid (routed to replica 1). Then
	// replica 1 is lost and the same set re-runs: uid probes fall back to a
	// surviving copy, ds probes keep their routed replica, and every answer
	// must survive the loss unchanged.
	probes := []string{
		`SELECT uid, val FROM logs WHERE ds = '2014-01-02'`,
		`SELECT ds, val FROM logs WHERE uid >= 10 AND uid < 20`,
		`SELECT uid, val FROM logs WHERE ds >= '2014-01-06'`,
		`SELECT ds, val FROM logs WHERE uid = 33`,
		`SELECT uid, val FROM logs WHERE ds < '2014-01-03'`,
	}
	rep.RoutedQueries = len(probes)
	routedRate := func() (float64, int64, [][]types.Row, error) {
		st := fs.Stats()
		hits0, fb0 := st.ReplicaRoutedHits.Load(), st.ReplicaFallbacks.Load()
		var all [][]types.Row
		for _, q := range probes {
			rows, _, _, err := pruneRun(d, layoutOnOff(true), q, 1)
			if err != nil {
				return 0, 0, nil, err
			}
			all = append(all, rows)
		}
		hits, fb := st.ReplicaRoutedHits.Load()-hits0, st.ReplicaFallbacks.Load()-fb0
		if hits+fb == 0 {
			return 0, 0, all, nil
		}
		return float64(hits) / float64(hits+fb), fb, all, nil
	}
	rateUp, _, wantRows, err := routedRate()
	if err != nil {
		return nil, err
	}
	rep.HitRateAllUp = rateUp
	meta, err := d.Metastore().Table("logs")
	if err != nil {
		return nil, err
	}
	lost := 0
	for _, fi := range fs.List(meta.Path) {
		if idx, ok := core.IsReplicaFile(fi.Name); ok && idx == 1 {
			fs.SetUnavailable(fi.Name, true)
			lost++
		}
	}
	if lost == 0 {
		return nil, fmt.Errorf("prune: no replica-1 files found under %s", meta.Path)
	}
	rateLost, fbLost, gotRows, err := routedRate()
	if err != nil {
		return nil, err
	}
	rep.HitRateOneLost, rep.FallbacksOneLost = rateLost, fbLost
	if !reflect.DeepEqual(wantRows, gotRows) {
		rep.Consistent = false
	}
	return rep, nil
}

// PrintPrune renders the E18 report.
func PrintPrune(w io.Writer, rep *PruneReport) {
	fmt.Fprintln(w, "E18: partition pruning, bucketing and replica-divergent indexing (S27)")
	fmt.Fprintf(w, "fact: %d rows across %d partitions x %d buckets\n",
		rep.FactRows, rep.Partitions, rep.Buckets)
	ratio := func(off, on int64) float64 {
		if on == 0 {
			return 0
		}
		return float64(off) / float64(on)
	}
	fmt.Fprintf(w, "selective scan (SS-DB q1 shape): baseline %d B / %s, pushdown %d B / %s, layout %d B / %s (%.0fx fewer bytes than baseline)\n",
		rep.ScanBytesBase, rep.ScanBase.Round(time.Millisecond),
		rep.ScanBytesPush, rep.ScanPush.Round(time.Millisecond),
		rep.ScanBytesLayout, rep.ScanLayout.Round(time.Millisecond),
		ratio(rep.ScanBytesBase, rep.ScanBytesLayout))
	fmt.Fprintf(w, "star join (TPC-DS q27 shape): baseline %d B / %s, pushdown %d B / %s, layout %d B / %s (%.0fx fewer bytes than baseline)\n",
		rep.StarBytesBase, rep.StarBase.Round(time.Millisecond),
		rep.StarBytesPush, rep.StarPush.Round(time.Millisecond),
		rep.StarBytesLayout, rep.StarLayout.Round(time.Millisecond),
		ratio(rep.StarBytesBase, rep.StarBytesLayout))
	fmt.Fprintf(w, "join shuffle bytes: shuffle join %d B / %s, bucket map join %d B / %s, SMB join %d B / %s\n",
		rep.ShuffleJoinBytes, rep.ShuffleJoinTime.Round(time.Millisecond),
		rep.BucketMapBytes, rep.BucketMapTime.Round(time.Millisecond),
		rep.SMBBytes, rep.SMBTime.Round(time.Millisecond))
	fmt.Fprintf(w, "replica routing (%d probes): hit rate %.0f%% all replicas up, %.0f%% with replica 1 lost (%d fallbacks)\n",
		rep.RoutedQueries, 100*rep.HitRateAllUp, 100*rep.HitRateOneLost, rep.FallbacksOneLost)
	ok := "yes"
	if !rep.Consistent {
		ok = "NO"
	}
	fmt.Fprintf(w, "all arms row-identical: %s\n", ok)
}
