// llap.go drives the LLAP experiment (E9, beyond the paper's figures; its
// §9 outlook): SS-DB query 1 and TPC-H query 6 run repeatedly against the
// daemon layer, cold versus warm, reporting elapsed time, DFS bytes, cache
// hit rate — plus a cache-size sweep and a cross-engine consistency check.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fileformat"
	"repro/internal/optimizer"
	"repro/internal/types"
	"repro/internal/workload"
)

// LLAPRow is one (query, run) measurement.
type LLAPRow struct {
	Query      string
	Run        string // "cold" or "warm"
	Elapsed    time.Duration
	DFSBytes   int64
	CacheBytes int64 // decompressed bytes served from the chunk cache
	TotalBytes int64
	HitRate    float64
	Rows       int
}

// LLAPSweepRow is one cache-budget point of the sweep ablation: SS-DB q1
// warm-run behaviour as the budget shrinks below the working set.
type LLAPSweepRow struct {
	CacheBytes int64
	WarmDFS    int64
	HitRate    float64
	Elapsed    time.Duration
}

// LLAPReport bundles the experiment's outputs.
type LLAPReport struct {
	Runs  []LLAPRow
	Sweep []LLAPSweepRow
	// Consistent reports whether ModeMapReduce, ModeTez and ModeLLAP
	// (cold and warm) returned the same rows for every query.
	Consistent bool
	Mismatches []string
}

// llapQuerySpec is one benchmark query with the tables it needs.
type llapQuerySpec struct {
	name   string
	sql    string
	tables []TableSpec
}

func llapQueries(cfg EnvConfig) []llapQuerySpec {
	return []llapQuerySpec{
		{"ssdb-q1", workload.SSDBQuery1(cfg.Scale.SSDBGrid / 2), SSDBTables()},
		{"tpch-q6", workload.TPCHQ6(), []TableSpec{{
			Name: "lineitem", Schema: workload.LineitemSchema(), Gen: workload.GenLineitem,
		}}},
	}
}

// llapEnvCfg normalizes the experiment configuration: ORC format (the cache
// keys ORC streams), all optimizations, and an index stride that subdivides
// the SS-DB geometry as Figure 10 requires.
func llapEnvCfg(cfg EnvConfig) EnvConfig {
	out := cfg
	out.Format = fileformat.ORC
	out.Opt = optimizer.AllOn()
	grid := cfg.Scale.SSDBGrid
	if out.ORCStride == 0 || out.ORCStride > grid/2 {
		out.ORCStride = maxInt(grid/2, 16)
	}
	return out
}

// RunLLAP measures cold-versus-warm behaviour, sweeps the cache budget, and
// cross-checks results against the other engine modes.
func RunLLAP(cfg EnvConfig, runs int) (*LLAPReport, error) {
	if runs <= 1 {
		runs = 3
	}
	base := llapEnvCfg(cfg)
	rep := &LLAPReport{Consistent: true}

	for _, q := range llapQueries(base) {
		envCfg := base
		envCfg.LLAP = true
		env, _, err := NewEnv(envCfg, q.tables)
		if err != nil {
			return nil, err
		}
		var rows [][]LLAPRow // per-run, for cold vs averaged warm
		var llapResults [][]interface{}
		for i := 0; i < runs; i++ {
			res, err := env.Run(q.sql)
			if err != nil {
				return nil, fmt.Errorf("bench: llap %s run %d: %w", q.name, i, err)
			}
			llapResults = append(llapResults, flattenRows(res))
			s := res.Stats
			hr := 0.0
			if s.CacheHits+s.CacheMisses > 0 {
				hr = float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
			}
			rows = append(rows, []LLAPRow{{
				Query:      q.name,
				Elapsed:    s.Elapsed,
				DFSBytes:   s.DFSBytesRead,
				CacheBytes: s.CacheBytesRead,
				TotalBytes: s.TotalBytesRead,
				HitRate:    hr,
				Rows:       len(res.Rows),
			}})
		}
		cold := rows[0][0]
		cold.Run = "cold"
		rep.Runs = append(rep.Runs, cold)
		warm := averageLLAPRows(rows[1:])
		warm.Query = q.name
		warm.Run = "warm"
		rep.Runs = append(rep.Runs, warm)
		env.Driver.Close()

		// Cross-engine consistency: MapReduce and Tez runs must match the
		// LLAP results (cold and warm alike). Float aggregates may differ
		// in the last bits across engines — summation order is not fixed —
		// so compare with a relative epsilon.
		for _, mode := range []struct {
			name string
			tez  bool
		}{{"mapreduce", false}, {"tez", true}} {
			other := base
			other.Tez = mode.tez
			otherEnv, _, err := NewEnv(other, q.tables)
			if err != nil {
				return nil, err
			}
			res, err := otherEnv.Run(q.sql)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %s: %w", mode.name, q.name, err)
			}
			want := flattenRows(res)
			for i, got := range llapResults {
				if msg := compareResults(want, got); msg != "" {
					rep.Consistent = false
					rep.Mismatches = append(rep.Mismatches,
						fmt.Sprintf("%s: llap run %d vs %s: %s", q.name, i, mode.name, msg))
				}
			}
		}
	}

	// Cache-size sweep over SS-DB q1: from a budget far below the working
	// set up to one that holds it fully.
	q1 := llapQueries(base)[0]
	for _, budget := range []int64{2 << 10, 8 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20} {
		envCfg := base
		envCfg.LLAP = true
		envCfg.LLAPCacheBytes = budget
		env, _, err := NewEnv(envCfg, q1.tables)
		if err != nil {
			return nil, err
		}
		if _, err := env.Run(q1.sql); err != nil {
			return nil, fmt.Errorf("bench: sweep cold at %d: %w", budget, err)
		}
		res, err := env.Run(q1.sql)
		if err != nil {
			return nil, fmt.Errorf("bench: sweep warm at %d: %w", budget, err)
		}
		s := res.Stats
		hr := 0.0
		if s.CacheHits+s.CacheMisses > 0 {
			hr = float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
		}
		rep.Sweep = append(rep.Sweep, LLAPSweepRow{
			CacheBytes: budget,
			WarmDFS:    s.DFSBytesRead,
			HitRate:    hr,
			Elapsed:    s.Elapsed,
		})
		env.Driver.Close()
	}
	return rep, nil
}

// averageLLAPRows averages the warm runs.
func averageLLAPRows(rows [][]LLAPRow) LLAPRow {
	var out LLAPRow
	n := int64(len(rows))
	if n == 0 {
		return out
	}
	for _, rr := range rows {
		r := rr[0]
		out.Elapsed += r.Elapsed
		out.DFSBytes += r.DFSBytes
		out.CacheBytes += r.CacheBytes
		out.TotalBytes += r.TotalBytes
		out.HitRate += r.HitRate
		out.Rows = r.Rows
	}
	out.Elapsed /= time.Duration(n)
	out.DFSBytes /= n
	out.CacheBytes /= n
	out.TotalBytes /= n
	out.HitRate /= float64(n)
	return out
}

// flattenRows turns a result into a flat value list for comparison,
// sorting rows by their printed form so engines that emit unordered result
// sets in different orders still compare equal.
func flattenRows(res *core.Result) []interface{} {
	rows := append([]types.Row(nil), res.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
	var out []interface{}
	for _, row := range rows {
		out = append(out, row...)
	}
	return out
}

// compareResults compares flattened results value by value; float64 values
// compare with relative epsilon, everything else exactly. Returns "" on
// match, else a description.
func compareResults(want, got []interface{}) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d values vs %d", len(got), len(want))
	}
	for i := range want {
		wf, wok := want[i].(float64)
		gf, gok := got[i].(float64)
		if wok && gok {
			if !floatsClose(wf, gf) {
				return fmt.Sprintf("value %d: %v vs %v", i, gf, wf)
			}
			continue
		}
		if want[i] != got[i] {
			return fmt.Sprintf("value %d: %v vs %v", i, got[i], want[i])
		}
	}
	return ""
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// PrintLLAP renders the experiment.
func PrintLLAP(w io.Writer, rep *LLAPReport) {
	fmt.Fprintln(w, "E9: LLAP daemon layer — cold vs warm (cache shared across runs)")
	fmt.Fprintf(w, "%-10s %-6s %12s %12s %12s %12s %9s\n",
		"query", "run", "elapsed(ms)", "dfs(MB)", "cache(MB)", "total(MB)", "hit rate")
	for _, r := range rep.Runs {
		fmt.Fprintf(w, "%-10s %-6s %12d %12.2f %12.2f %12.2f %8.1f%%\n",
			r.Query, r.Run, r.Elapsed.Milliseconds(), mb(r.DFSBytes), mb(r.CacheBytes), mb(r.TotalBytes), 100*r.HitRate)
	}
	for _, q := range []string{"ssdb-q1", "tpch-q6"} {
		var cold, warm *LLAPRow
		for i := range rep.Runs {
			r := &rep.Runs[i]
			if r.Query != q {
				continue
			}
			if r.Run == "cold" {
				cold = r
			} else {
				warm = r
			}
		}
		if cold != nil && warm != nil && cold.DFSBytes > 0 {
			fmt.Fprintf(w, "%s: warm reads %.1f%% fewer DFS bytes, %.2fx faster\n",
				q, 100*(1-float64(warm.DFSBytes)/float64(cold.DFSBytes)),
				float64(cold.Elapsed)/float64(maxDuration(warm.Elapsed, 1)))
		}
	}
	fmt.Fprintln(w, "\nCache-size sweep (SS-DB q1, warm run):")
	fmt.Fprintf(w, "%12s %12s %9s %12s\n", "budget(MB)", "dfs(MB)", "hit rate", "elapsed(ms)")
	for _, r := range rep.Sweep {
		fmt.Fprintf(w, "%12.2f %12.2f %8.1f%% %12d\n",
			mb(r.CacheBytes), mb(r.WarmDFS), 100*r.HitRate, r.Elapsed.Milliseconds())
	}
	if rep.Consistent {
		fmt.Fprintln(w, "\nResults identical across mapreduce / tez / llap (cold and warm).")
	} else {
		fmt.Fprintln(w, "\nRESULT MISMATCHES:")
		for _, m := range rep.Mismatches {
			fmt.Fprintln(w, "  "+m)
		}
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
