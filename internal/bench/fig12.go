// fig12.go reproduces Figure 12: TPC-H queries 1 and 6 under the original
// (row-mode) engine over RCFile, the row-mode engine over ORC, and the
// vectorized engine over ORC — reporting total elapsed times (12a) and
// cumulative CPU times (12b).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fileformat"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Fig12Row is one (query, engine) measurement.
type Fig12Row struct {
	Query         string
	Config        string
	Elapsed       time.Duration
	CumulativeCPU time.Duration
	Rows          int
}

// Fig12Configs are the three execution configurations.
func Fig12Configs() []struct {
	Name      string
	Format    fileformat.Kind
	Vectorize bool
} {
	return []struct {
		Name      string
		Format    fileformat.Kind
		Vectorize bool
	}{
		{"RCFile (No Vector)", fileformat.RC, false},
		{"ORC File (No Vector)", fileformat.ORC, false},
		{"ORC File (Vector)", fileformat.ORC, true},
	}
}

// RunFig12 measures both queries under all three configurations, averaging
// over the given number of runs to damp scheduler noise.
func RunFig12(cfg EnvConfig, runs int) ([]Fig12Row, error) {
	if runs <= 0 {
		runs = 3
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"q1", workload.TPCHQ1()},
		{"q6", workload.TPCHQ6()},
	}
	var out []Fig12Row
	for _, c := range Fig12Configs() {
		envCfg := cfg
		envCfg.Format = c.Format
		envCfg.Opt = optimizer.Options{Vectorize: c.Vectorize, PredicatePushdown: false}
		env, _, err := NewEnv(envCfg, []TableSpec{{
			Name: "lineitem", Schema: workload.LineitemSchema(), Gen: workload.GenLineitem,
		}})
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			var elapsed, cpu time.Duration
			rows := 0
			for i := 0; i < runs; i++ {
				res, err := env.Run(q.sql)
				if err != nil {
					return nil, fmt.Errorf("bench: %s under %s: %w", q.name, c.Name, err)
				}
				elapsed += res.Stats.Elapsed
				cpu += res.Stats.CumulativeCPU
				rows = len(res.Rows)
			}
			out = append(out, Fig12Row{
				Query:         q.name,
				Config:        c.Name,
				Elapsed:       elapsed / time.Duration(runs),
				CumulativeCPU: cpu / time.Duration(runs),
				Rows:          rows,
			})
		}
	}
	return out, nil
}

// PrintFig12 renders both panels.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintln(w, "Figure 12(a): TPC-H q1/q6 elapsed times (ms)")
	printFig12Panel(w, rows, func(r Fig12Row) int64 { return r.Elapsed.Milliseconds() })
	fmt.Fprintln(w, "\nFigure 12(b): cumulative CPU times (ms)")
	printFig12Panel(w, rows, func(r Fig12Row) int64 { return r.CumulativeCPU.Milliseconds() })
	// CPU ratio row engine / vectorized, the paper's ~5x (q1) and ~3x (q6).
	for _, q := range []string{"q1", "q6"} {
		var rowCPU, vecCPU time.Duration
		for _, r := range rows {
			if r.Query != q {
				continue
			}
			switch r.Config {
			case "ORC File (No Vector)":
				rowCPU = r.CumulativeCPU
			case "ORC File (Vector)":
				vecCPU = r.CumulativeCPU
			}
		}
		if vecCPU > 0 {
			fmt.Fprintf(w, "%s row/vectorized CPU ratio: %.2fx\n", q, float64(rowCPU)/float64(vecCPU))
		}
	}
}

func printFig12Panel(w io.Writer, rows []Fig12Row, val func(Fig12Row) int64) {
	configs := Fig12Configs()
	fmt.Fprintf(w, "%-6s", "")
	for _, c := range configs {
		fmt.Fprintf(w, " %22s", c.Name)
	}
	fmt.Fprintln(w)
	for _, q := range []string{"q1", "q6"} {
		fmt.Fprintf(w, "%-6s", q)
		for _, c := range configs {
			for _, r := range rows {
				if r.Query == q && r.Config == c.Name {
					fmt.Fprintf(w, " %22d", val(r))
				}
			}
		}
		fmt.Fprintln(w)
	}
}
