// concurrency.go drives E14, the multi-tenant concurrency experiment
// (beyond the paper's figures; its §9 "servers and workload management"
// outlook): a mixed interactive+batch client population fires queries at
// one shared driver through internal/server, sweeping the client count.
// Reported per level: total throughput, interactive and batch latency
// quantiles, preemption counts, and a correctness bit (every concurrent
// result must equal the serial reference). A with/without-preemption pair
// at one level isolates what admission-queue preemption buys the
// interactive pool's tail.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fileformat"
	"repro/internal/optimizer"
	"repro/internal/server"
	"repro/internal/workload"
)

// ConcurrencyRow is one client-count measurement.
type ConcurrencyRow struct {
	Clients    int
	Preemption bool
	Queries    int
	Errors     int
	Wall       time.Duration
	Throughput float64 // queries per second across both pools
	InterP50   time.Duration
	InterP95   time.Duration
	InterP99   time.Duration
	BatchP50   time.Duration
	BatchP95   time.Duration
	Preempted  int64
	Consistent bool
}

// ConcurrencyReport bundles the sweep and the preemption ablation.
type ConcurrencyReport struct {
	Rows []ConcurrencyRow
	// CompareClients is the client count of the preemption ablation;
	// P95With/P95Without are the interactive pool's p95 there.
	CompareClients int
	P95With        time.Duration
	P95Without     time.Duration
}

// concSlots is the global executor-slot budget the pools share; matching
// the LLAP daemon's default worker count keeps admission the bottleneck
// under study rather than the daemon queue behind it.
const concSlots = 4

// ablationReps is how many with/without pairs the preemption ablation
// pools before comparing interactive p95s.
const ablationReps = 3

// RunConcurrency loads the warehouse once and sweeps the client levels;
// perClient is the interactive queries per interactive client (batch
// clients run about half as many of the heavier batch query). A final
// with/without-preemption pair runs at compareClients.
func RunConcurrency(cfg EnvConfig, levels []int, perClient, compareClients int) (*ConcurrencyReport, error) {
	ecfg := cfg
	ecfg.Format = fileformat.ORC
	ecfg.Opt = optimizer.AllOn()
	ecfg.LLAP = true
	// Batch must genuinely hold slots for the interactive pool to starve:
	// scale lineitem up so TPC-H q1 runs long relative to the interactive
	// point query, which is the contrast this experiment is about.
	ecfg.Scale.Lineitem *= 8
	grid := cfg.Scale.SSDBGrid
	if ecfg.ORCStride == 0 || ecfg.ORCStride > grid/2 {
		ecfg.ORCStride = maxInt(grid/2, 16)
	}
	tables := append(SSDBTables(), TableSpec{
		Name: "lineitem", Schema: workload.LineitemSchema(), Gen: workload.GenLineitem,
	})
	env, _, err := NewEnv(ecfg, tables)
	if err != nil {
		return nil, err
	}
	defer env.Driver.Close()
	d := env.Driver

	interQ := workload.SSDBQuery1(grid / 2)
	// TPC-H q1's shape, restricted to integer aggregates: double sums
	// are order-sensitive in the last bits, and concurrent runs merge
	// partials in nondeterministic order. Integer columns keep the
	// byte-identical-to-serial check meaningful.
	batchQ := `SELECT l_returnflag, l_linestatus,
  count(*) AS count_order,
  sum(l_quantity) AS sum_qty,
  sum(l_orderkey) AS sum_key,
  min(l_shipdate) AS min_ship,
  max(l_receiptdate) AS max_rcpt
FROM lineitem
WHERE l_shipdate <= 10471
GROUP BY l_returnflag, l_linestatus`
	refInter, err := serialReference(d, interQ)
	if err != nil {
		return nil, err
	}
	refBatch, err := serialReference(d, batchQ)
	if err != nil {
		return nil, err
	}

	rep := &ConcurrencyReport{CompareClients: compareClients}
	for _, n := range levels {
		row, _, err := runConcurrencyLevel(d, n, perClient, true, interQ, batchQ, refInter, refBatch, nil)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}

	// The ablation pools interactive latencies over ablationReps repeated
	// runs of each arm (alternating with/without) before taking p95; a
	// single pair is too noisy for a few-millisecond tail effect.
	var withLat, withoutLat []time.Duration
	for r := 0; r < ablationReps; r++ {
		_, lat, err := runConcurrencyLevel(d, compareClients, perClient, true, interQ, batchQ, refInter, refBatch, nil)
		if err != nil {
			return nil, err
		}
		withLat = append(withLat, lat...)
		_, lat, err = runConcurrencyLevel(d, compareClients, perClient, false, interQ, batchQ, refInter, refBatch, nil)
		if err != nil {
			return nil, err
		}
		withoutLat = append(withoutLat, lat...)
	}
	rep.P95With = quantileDur(withLat, 0.95)
	rep.P95Without = quantileDur(withoutLat, 0.95)
	return rep, nil
}

func serialReference(d *core.Driver, q string) (string, error) {
	res, err := d.Run(q)
	if err != nil {
		return "", err
	}
	return renderConcRows(res), nil
}

// renderConcRows renders a result order-insensitively (rows sorted by
// their printed form) so concurrent runs compare byte-identically.
func renderConcRows(res *core.Result) string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, fmt.Sprint(r))
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

// runConcurrencyLevel opens a fresh server (two pools over concSlots
// shared slots), splits clients ~1:2 interactive:batch, and drives them to
// completion. Batch clients start first and hold slots with long queries;
// interactive clients arrive staggered and pause between queries (think
// time), so their arrivals keep finding batch queries mid-flight — the
// starvation pattern workload management exists for. Batch sessions run on
// the Tez engine: a preempted Tez query's tasks observe cancellation and
// stop, genuinely returning their executors, where the LLAP daemon would
// finish abandoned tasks it owns. Preemption=false demotes the pools to
// plain admission — same budgets, no cancel-and-requeue.
// onServer, when non-nil, observes the freshly built server before clients
// start (E17 points its HTTP admin plane and metrics scraper at it).
func runConcurrencyLevel(d *core.Driver, clients, perClient int, preemption bool,
	interQ, batchQ, refInter, refBatch string, onServer func(*server.Server)) (ConcurrencyRow, []time.Duration, error) {
	srv := server.New(d, server.ManagerConfig{
		TotalSlots: concSlots,
		Pools: []server.PoolConfig{
			{Name: "interactive", Slots: concSlots, QueueDepth: 4096, Interactive: preemption},
			// MaxRequeues is generous so batch stays preemptable for the
			// whole run; interactive think-time gaps are when batch
			// retries complete, so batch still drains.
			{Name: "batch", Slots: concSlots, QueueDepth: 4096, Preemptable: preemption, MaxRequeues: 64},
		},
	})
	defer srv.Close()
	if onServer != nil {
		onServer(srv)
	}

	// 1:2 interactive:batch — batch supplies the slot pressure, and the
	// lighter interactive population measures latency under it. (With the
	// ratio inverted the interactive pool queues behind itself, which
	// preemption of batch cannot help.)
	nInter := clients / 3
	if nInter == 0 {
		nInter = 1
	}
	nBatch := clients - nInter
	batchPerClient := perClient/2 + 1

	row := ConcurrencyRow{Clients: clients, Preemption: preemption, Consistent: true}
	var (
		mu        sync.Mutex
		interLat  []time.Duration
		batchLat  []time.Duration
		wg        sync.WaitGroup
		runClient = func(idx int, pool, query, want string, queries int) {
			defer wg.Done()
			sess, err := srv.OpenSession(pool)
			if err != nil {
				mu.Lock()
				row.Errors++
				mu.Unlock()
				return
			}
			defer sess.Close()
			if pool == "batch" {
				conf := sess.Config()
				conf.Engine = core.ModeTez
				sess.SetConfig(conf)
			} else {
				// Deterministic stagger + think time keeps interactive
				// arrivals spread out instead of one synchronized burst.
				time.Sleep(time.Duration(1+idx%7) * time.Millisecond)
			}
			for i := 0; i < queries; i++ {
				if pool == "interactive" && i > 0 {
					time.Sleep(5 * time.Millisecond)
				}
				qStart := time.Now()
				res, err := sess.Run(context.Background(), query)
				lat := time.Since(qStart)
				mu.Lock()
				if err != nil {
					row.Errors++
				} else {
					row.Queries++
					if pool == "interactive" {
						interLat = append(interLat, lat)
					} else {
						batchLat = append(batchLat, lat)
					}
					if renderConcRows(res) != want {
						row.Consistent = false
					}
				}
				mu.Unlock()
			}
		}
	)

	start := time.Now()
	for c := 0; c < nBatch; c++ {
		wg.Add(1)
		go runClient(c, "batch", batchQ, refBatch, batchPerClient)
	}
	for c := 0; c < nInter; c++ {
		wg.Add(1)
		go runClient(c, "interactive", interQ, refInter, perClient)
	}
	wg.Wait()
	row.Wall = time.Since(start)
	if row.Wall > 0 {
		row.Throughput = float64(row.Queries) / row.Wall.Seconds()
	}
	row.InterP50 = quantileDur(interLat, 0.50)
	row.InterP95 = quantileDur(interLat, 0.95)
	row.InterP99 = quantileDur(interLat, 0.99)
	row.BatchP50 = quantileDur(batchLat, 0.50)
	row.BatchP95 = quantileDur(batchLat, 0.95)
	for _, st := range srv.Manager().Stats() {
		row.Preempted += st.Preempted
	}
	return row, interLat, nil
}

// quantileDur returns the q-quantile of the (unsorted) latency sample.
func quantileDur(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// PrintConcurrency renders the E14 table and the preemption ablation.
func PrintConcurrency(w io.Writer, rep *ConcurrencyReport) {
	fmt.Fprintln(w, "E14: multi-tenant concurrency (interactive SS-DB q1 + batch lineitem scan,")
	fmt.Fprintf(w, "     1:2 clients, %d shared slots, interactive on LLAP, batch on Tez)\n", concSlots)
	fmt.Fprintf(w, "%8s %8s %9s %12s %12s %12s %12s %10s %6s\n",
		"clients", "queries", "q/s", "inter p50", "inter p95", "inter p99", "batch p95", "preempted", "ok")
	for _, r := range rep.Rows {
		ok := "yes"
		if !r.Consistent || r.Errors > 0 {
			ok = "NO"
		}
		fmt.Fprintf(w, "%8d %8d %9.1f %12s %12s %12s %12s %10d %6s\n",
			r.Clients, r.Queries, r.Throughput,
			r.InterP50.Round(time.Microsecond), r.InterP95.Round(time.Microsecond),
			r.InterP99.Round(time.Microsecond), r.BatchP95.Round(time.Microsecond),
			r.Preempted, ok)
	}
	verdict := "improved"
	if rep.P95With >= rep.P95Without {
		verdict = "did not improve"
	}
	fmt.Fprintf(w, "preemption ablation at %d clients: interactive p95 %s with preemption vs %s without (%s the tail)\n",
		rep.CompareClients, rep.P95With.Round(time.Microsecond), rep.P95Without.Round(time.Microsecond), verdict)
}
