// storage.go implements the storage-efficiency experiments: Table 2
// (dataset sizes per format) and Figure 9 (data loading times).
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/compress"
	"repro/internal/fileformat"
)

// FormatVariant is one column of Table 2.
type FormatVariant struct {
	Label       string
	Format      fileformat.Kind
	Compression compress.Kind
}

// Table2Variants reproduces the paper's five format columns.
func Table2Variants() []FormatVariant {
	return []FormatVariant{
		{"Text", fileformat.Text, compress.None},
		{"RCFile", fileformat.RC, compress.None},
		{"RCFile Snappy", fileformat.RC, compress.Snappy},
		{"ORC File", fileformat.ORC, compress.None},
		{"ORC File Snappy", fileformat.ORC, compress.Snappy},
	}
}

// StorageResult holds Table 2 + Figure 9 numbers for one (dataset, format)
// cell.
type StorageResult struct {
	Dataset  string
	Variant  string
	Bytes    int64
	LoadTime time.Duration
}

// RunStorage measures every (dataset, variant) cell.
func RunStorage(cfg EnvConfig) ([]StorageResult, error) {
	var out []StorageResult
	names := make([]string, 0, 3)
	for name := range Datasets() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, dataset := range names {
		tables := Datasets()[dataset]
		for _, v := range Table2Variants() {
			c := cfg
			c.Format = v.Format
			c.Compression = v.Compression
			env, loadTimes, err := NewEnv(c, tables)
			if err != nil {
				return nil, fmt.Errorf("bench: loading %s as %s: %w", dataset, v.Label, err)
			}
			var total time.Duration
			for _, d := range loadTimes {
				total += d
			}
			out = append(out, StorageResult{
				Dataset:  dataset,
				Variant:  v.Label,
				Bytes:    env.TableBytes(),
				LoadTime: total,
			})
		}
	}
	return out, nil
}

// PrintTable2 renders the Table 2 rows (sizes per format per dataset).
func PrintTable2(w io.Writer, results []StorageResult) {
	fmt.Fprintln(w, "Table 2: dataset sizes (MB) by format")
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "", "SS-DB", "TPC-H", "TPC-DS")
	for _, v := range Table2Variants() {
		row := map[string]int64{}
		for _, r := range results {
			if r.Variant == v.Label {
				row[r.Dataset] = r.Bytes
			}
		}
		fmt.Fprintf(w, "%-16s %10.2f %10.2f %10.2f\n", v.Label,
			mb(row["SS-DB"]), mb(row["TPC-H"]), mb(row["TPC-DS"]))
	}
}

// PrintFig9 renders the Figure 9 series (loading elapsed times).
func PrintFig9(w io.Writer, results []StorageResult) {
	fmt.Fprintln(w, "Figure 9: data loading elapsed times (ms)")
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "", "SS-DB", "TPC-H", "TPC-DS")
	for _, v := range Table2Variants() {
		if v.Label == "Text" {
			continue // the paper loads *from* text into the four formats
		}
		row := map[string]time.Duration{}
		for _, r := range results {
			if r.Variant == v.Label {
				row[r.Dataset] = r.LoadTime
			}
		}
		fmt.Fprintf(w, "%-16s %10d %10d %10d\n", v.Label,
			row["SS-DB"].Milliseconds(), row["TPC-H"].Milliseconds(), row["TPC-DS"].Milliseconds())
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
