package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

// tinyScale keeps the experiment tests fast while preserving every shape.
func tinyScale() workload.Scale {
	sc := workload.DefaultScale()
	sc.SSDBGrid = 64
	sc.Lineitem = 8000
	sc.Orders = 2000
	sc.Customers = 200
	sc.StoreSales = 6000
	sc.WebSales = 6000
	sc.WebReturns = 800
	return sc
}

func tinyCfg() EnvConfig {
	return EnvConfig{Scale: tinyScale(), ORCStride: 512, RowsPerFile: 4000}
}

func TestStorageShape(t *testing.T) {
	results, err := RunStorage(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[string]int64{}
	for _, r := range results {
		byCell[r.Dataset+"/"+r.Variant] = r.Bytes
	}
	for _, ds := range []string{"SS-DB", "TPC-H", "TPC-DS"} {
		text := byCell[ds+"/Text"]
		rc := byCell[ds+"/RCFile"]
		rcs := byCell[ds+"/RCFile Snappy"]
		orcPlain := byCell[ds+"/ORC File"]
		orcs := byCell[ds+"/ORC File Snappy"]
		if text == 0 || rc == 0 || orcPlain == 0 {
			t.Fatalf("%s: missing cells: %v", ds, byCell)
		}
		// Table 2's shape: ORC < RCFile < Text; Snappy shrinks both.
		if !(orcPlain < rc && rc < text) {
			t.Errorf("%s: size ordering violated: orc=%d rc=%d text=%d", ds, orcPlain, rc, text)
		}
		if rcs >= rc {
			t.Errorf("%s: RCFile Snappy %d >= RCFile %d", ds, rcs, rc)
		}
		if orcs >= orcPlain {
			t.Errorf("%s: ORC Snappy %d >= ORC %d", ds, orcs, orcPlain)
		}
	}
	// Table 2's SS-DB/TPC-DS anomaly inversion: plain ORC beats
	// RCFile+Snappy on datasets without random-string columns.
	if byCell["SS-DB/ORC File"] >= byCell["SS-DB/RCFile Snappy"] {
		t.Errorf("SS-DB: plain ORC (%d) should beat RCFile Snappy (%d) via type-specific encodings",
			byCell["SS-DB/ORC File"], byCell["SS-DB/RCFile Snappy"])
	}
	// TPC-H: snappy compresses ORC much further because of the random
	// comment strings (dictionary-ineligible).
	tpchGain := float64(byCell["TPC-H/ORC File"]) / float64(byCell["TPC-H/ORC File Snappy"])
	ssdbGain := float64(byCell["SS-DB/ORC File"]) / float64(byCell["SS-DB/ORC File Snappy"])
	if tpchGain <= ssdbGain {
		t.Logf("note: TPC-H snappy gain %.2f <= SS-DB gain %.2f (paper expects TPC-H to gain more)", tpchGain, ssdbGain)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, results)
	PrintFig9(&buf, results)
	if !strings.Contains(buf.String(), "ORC File Snappy") {
		t.Error("printout incomplete")
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := RunFig10(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(d, c string) Fig10Row {
		for _, r := range rows {
			if r.Difficulty == d && r.Config == c {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", d, c)
		return Fig10Row{}
	}
	// Same aggregate results across configurations.
	for _, d := range []string{"1.easy", "1.medium", "1.hard"} {
		rc := get(d, "RCFile (No PPD)")
		orcNo := get(d, "ORC File (No PPD)")
		orcPpd := get(d, "ORC File (PPD)")
		if rc.Sum != orcNo.Sum || orcNo.Sum != orcPpd.Sum || rc.Rows != orcPpd.Rows {
			t.Errorf("%s: results differ across configs: %v/%v vs %v/%v vs %v/%v",
				d, rc.Sum, rc.Rows, orcNo.Sum, orcNo.Rows, orcPpd.Sum, orcPpd.Rows)
		}
	}
	// Figure 10(b) shape, observation 1: ORC reads less than RCFile even
	// without PPD (projection + efficient encoding).
	if get("1.hard", "ORC File (No PPD)").BytesRead >= get("1.hard", "RCFile (No PPD)").BytesRead {
		t.Errorf("ORC no-PPD read more than RCFile: %d vs %d",
			get("1.hard", "ORC File (No PPD)").BytesRead, get("1.hard", "RCFile (No PPD)").BytesRead)
	}
	// Observation 2: with indexes, the easy query reads far less. At this
	// miniature scale the read-through gap merging caps the reduction
	// around 2x; the benchmark scale shows 3x+ (see EXPERIMENTS.md).
	easyPpd := get("1.easy", "ORC File (PPD)").BytesRead
	easyNo := get("1.easy", "ORC File (No PPD)").BytesRead
	if easyPpd*3 >= easyNo*2 {
		t.Errorf("PPD did not significantly reduce easy-query bytes: %d vs %d", easyPpd, easyNo)
	}
	// Observation 3: for the hard query (all rows match) index overhead is
	// low: PPD reads at most slightly more than no-PPD.
	hardPpd := get("1.hard", "ORC File (PPD)").BytesRead
	hardNo := get("1.hard", "ORC File (No PPD)").BytesRead
	if float64(hardPpd) > float64(hardNo)*1.25 {
		t.Errorf("index overhead too high on hard query: %d vs %d", hardPpd, hardNo)
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
	if !strings.Contains(buf.String(), "1.medium") {
		t.Error("printout incomplete")
	}
}

func TestFig11aShape(t *testing.T) {
	rows, err := RunFig11a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	withUM, withoutUM := rows[0], rows[1]
	// Paper: w/ UM has four Map-only jobs + one MR job; merged has one MR
	// job (plus, in our pipeline, the order-by job).
	if withUM.MapOnlyJobs < 4 {
		t.Errorf("w/ UM has %d map-only jobs, want >= 4", withUM.MapOnlyJobs)
	}
	if withoutUM.MapOnlyJobs != 0 {
		t.Errorf("w/o UM still has %d map-only jobs", withoutUM.MapOnlyJobs)
	}
	if withoutUM.Jobs >= withUM.Jobs {
		t.Errorf("job count did not drop: %d -> %d", withUM.Jobs, withoutUM.Jobs)
	}
	if withUM.Rows != withoutUM.Rows || withUM.FirstRow != withoutUM.FirstRow {
		t.Errorf("results differ: %d (%s) vs %d (%s)", withUM.Rows, withUM.FirstRow, withoutUM.Rows, withoutUM.FirstRow)
	}
	var buf bytes.Buffer
	PrintFig11(&buf, "Figure 11(a)", rows)
}

func TestFig11bShape(t *testing.T) {
	rows, err := RunFig11b(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, co, both := rows[0], rows[1], rows[2]
	if co.Jobs >= base.Jobs {
		t.Errorf("correlation optimizer did not reduce jobs: %d -> %d", base.Jobs, co.Jobs)
	}
	if both.Jobs > co.Jobs {
		t.Errorf("merging map-only jobs increased jobs: %d -> %d", co.Jobs, both.Jobs)
	}
	if both.MapOnlyJobs != 0 {
		t.Errorf("final config still has %d map-only jobs", both.MapOnlyJobs)
	}
	if base.Rows != co.Rows || co.Rows != both.Rows {
		t.Errorf("result rows differ: %d / %d / %d", base.Rows, co.Rows, both.Rows)
	}
	if base.FirstRow != co.FirstRow || co.FirstRow != both.FirstRow {
		t.Errorf("result values differ:\n base %s\n co   %s\n both %s",
			base.FirstRow, co.FirstRow, both.FirstRow)
	}
	var buf bytes.Buffer
	PrintFig11(&buf, "Figure 11(b)", rows)
}

func TestFig12Shape(t *testing.T) {
	cfg := tinyCfg()
	rows, err := RunFig12(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All configurations must produce the same row counts.
	byQuery := map[string][]Fig12Row{}
	for _, r := range rows {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	for q, rs := range byQuery {
		for _, r := range rs[1:] {
			if r.Rows != rs[0].Rows {
				t.Errorf("%s: row count differs under %s: %d vs %d", q, r.Config, r.Rows, rs[0].Rows)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows)
	if !strings.Contains(buf.String(), "CPU ratio") {
		t.Error("printout incomplete")
	}
}

func TestLLAPShape(t *testing.T) {
	rep, err := RunLLAP(tinyCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Errorf("engines disagree: %v", rep.Mismatches)
	}
	byKey := map[string]LLAPRow{}
	for _, r := range rep.Runs {
		byKey[r.Query+"/"+r.Run] = r
	}
	for _, q := range []string{"ssdb-q1", "tpch-q6"} {
		cold, warm := byKey[q+"/cold"], byKey[q+"/warm"]
		if cold.DFSBytes == 0 {
			t.Fatalf("%s: cold run read no DFS bytes", q)
		}
		if warm.DFSBytes*10 > cold.DFSBytes {
			t.Errorf("%s: warm DFS bytes %d not >=90%% below cold %d", q, warm.DFSBytes, cold.DFSBytes)
		}
		if warm.HitRate == 0 {
			t.Errorf("%s: warm hit rate is zero", q)
		}
		if warm.TotalBytes == 0 {
			t.Errorf("%s: warm TotalBytes is zero (cache-served reads unreported)", q)
		}
	}
	if len(rep.Sweep) == 0 {
		t.Fatal("no sweep rows")
	}
	// The sweep's largest budget must hold the working set fully.
	last := rep.Sweep[len(rep.Sweep)-1]
	if last.HitRate == 0 {
		t.Errorf("sweep at %d bytes has zero hit rate", last.CacheBytes)
	}
	var buf bytes.Buffer
	PrintLLAP(&buf, rep)
	if !strings.Contains(buf.String(), "Cache-size sweep") {
		t.Error("printout incomplete")
	}
}

// BenchmarkLLAPWarmCache measures the steady-state cost of SS-DB q1 when
// every chunk is served from the daemon cache (satellite of E9).
func BenchmarkLLAPWarmCache(b *testing.B) {
	cfg := llapEnvCfg(tinyCfg())
	cfg.LLAP = true
	q := llapQueries(cfg)[0]
	env, _, err := NewEnv(cfg, q.tables)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Driver.Close()
	if _, err := env.Run(q.sql); err != nil { // cold run fills the cache
		b.Fatal(err)
	}
	var dfsBytes, hits, misses int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.Run(q.sql)
		if err != nil {
			b.Fatal(err)
		}
		dfsBytes += res.Stats.DFSBytesRead
		hits += res.Stats.CacheHits
		misses += res.Stats.CacheMisses
	}
	b.ReportMetric(float64(dfsBytes)/float64(b.N), "dfsB/op")
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hitrate")
	}
}

// TestJoinShape is the E13 acceptance check at tiny scale: all four
// configurations agree, the vectorized configs actually probe in batches,
// builds happen once per query, and warm LLAP runs build nothing because
// every table comes from the daemon's build cache.
func TestJoinShape(t *testing.T) {
	rep, err := RunJoin(tinyCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Errorf("configurations disagree: %v", rep.Mismatches)
	}
	byConfig := map[string]JoinRow{}
	for _, r := range rep.Runs {
		byConfig[r.Config] = r
	}
	row, vec := byConfig["row (tez)"], byConfig["vectorized (tez)"]
	cold, warm := byConfig["llap cold"], byConfig["llap warm"]
	warmRow := byConfig["llap warm (row)"]
	if row.Rows == 0 || row.Builds == 0 {
		t.Fatalf("row config ran nothing: %+v", row)
	}
	if row.Batches != 0 {
		t.Errorf("row engine reported %d probe batches", row.Batches)
	}
	if vec.Batches == 0 {
		t.Error("vectorized config consumed no probe batches")
	}
	// Shared builds: 4 small tables, each built exactly once per query.
	for _, r := range []JoinRow{row, vec, cold} {
		if r.Builds != 4 {
			t.Errorf("%s: %d builds, want 4 (once per small table)", r.Config, r.Builds)
		}
	}
	for _, r := range []JoinRow{warm, warmRow} {
		if r.Builds != 0 {
			t.Errorf("%s still built %d hash tables", r.Config, r.Builds)
		}
		if r.Cached != 4 {
			t.Errorf("%s served %d tables from the build cache, want 4", r.Config, r.Cached)
		}
	}
	if warmRow.Batches != 0 {
		t.Errorf("row-mode warm run reported %d probe batches", warmRow.Batches)
	}
	if rep.VecSpeedup < 1 || rep.WarmSpeedup < 1 {
		t.Logf("note: speedups below 1 at tiny scale: vec %.2fx warm %.2fx", rep.VecSpeedup, rep.WarmSpeedup)
	}
	var buf bytes.Buffer
	PrintJoin(&buf, rep)
	if !strings.Contains(buf.String(), "E13") {
		t.Error("printout incomplete")
	}
}

func TestCBOShape(t *testing.T) {
	rep, err := RunCBO(tinyCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(rep.Runs))
	}
	if !rep.Consistent {
		t.Errorf("CBO plan changed the answer: %v", rep.Mismatches)
	}
	h, c := rep.Runs[0], rep.Runs[1]
	if h.FirstDim != "cust_demo" {
		t.Errorf("heuristic joined %q first, want cust_demo (query order)", h.FirstDim)
	}
	if c.FirstDim != "promo" {
		t.Errorf("CBO joined %q first, want promo (statistics order)", c.FirstDim)
	}
	if !rep.OrderChanged {
		t.Error("CBO did not change the join order")
	}
	if c.EstOps == 0 {
		t.Error("CBO run carried no operator estimates")
	}
	if h.EstOps != 0 {
		t.Errorf("heuristic run carried %d estimates, want none", h.EstOps)
	}
	var buf bytes.Buffer
	PrintCBO(&buf, rep)
	if !strings.Contains(buf.String(), "E16") {
		t.Error("printout incomplete")
	}
}

func TestTezComparisonShape(t *testing.T) {
	rows, err := RunTezComparison(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	mr, tez := rows[0], rows[1]
	if mr.FirstRow != tez.FirstRow {
		t.Errorf("results differ: %s vs %s", mr.FirstRow, tez.FirstRow)
	}
	if tez.Elapsed >= mr.Elapsed {
		t.Logf("note: tez elapsed %v >= mapreduce %v at tiny scale", tez.Elapsed, mr.Elapsed)
	}
}

// TestFaultMatrix is the E10 acceptance check: under a seeded policy with a
// 30% per-attempt task failure rate, transient read faults, stragglers,
// cache faults and one corrupt block per run, SS-DB q1 and TPC-H q6
// complete on all three engines with the clean-run results, and every
// engine shows nonzero retries.
func TestFaultMatrix(t *testing.T) {
	// Shrink files so each tiny table still spans many map tasks: fault
	// decisions are deterministic per (job, task, node), so a handful of
	// tasks gives the 30% coin too few distinct flips to reliably land.
	cfg := tinyCfg()
	cfg.RowsPerFile = 512
	rep, err := RunFaults(cfg, DefaultFaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("got %d (engine, query) rows, want 6", len(rep.Rows))
	}
	if !rep.Consistent {
		t.Errorf("faulted results diverged: %v", rep.Mismatches)
	}
	retriedByEngine := map[string]int64{}
	for _, r := range rep.Rows {
		if !r.Match {
			t.Errorf("%s/%s: faulted run did not match clean run", r.Engine, r.Query)
		}
		retriedByEngine[r.Engine] += r.Retried
		if r.Retried > 0 && r.Backoff <= 0 {
			t.Errorf("%s/%s: %d retries but no accounted backoff", r.Engine, r.Query, r.Retried)
		}
	}
	for _, engine := range []string{"mapreduce", "tez", "llap"} {
		if retriedByEngine[engine] == 0 {
			t.Errorf("engine %s never retried a task under a 30%% failure rate", engine)
		}
	}
	if rep.Injected.TaskFailures == 0 || rep.Injected.ReadFaults == 0 {
		t.Errorf("injection totals too low: %+v", rep.Injected)
	}
	if rep.CorruptReads == 0 {
		t.Error("no corrupt block was ever detected across 6 faulty runs")
	}

	// Same seed, same faults: totals are exactly reproducible without
	// stragglers (speculation races make the losers' coin consultation
	// timing-dependent, so the full default config is excluded here).
	fc := DefaultFaultConfig(42)
	fc.StragglerProb = 0
	repA, err := RunFaults(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := RunFaults(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Injected != repB.Injected {
		t.Errorf("same seed injected different faults: %+v vs %+v", repA.Injected, repB.Injected)
	}
	if repA.Injected.TaskFailures == 0 {
		t.Error("straggler-free policy injected no task failures")
	}

	// Print path stays in sync with the report fields.
	var buf bytes.Buffer
	PrintFaults(&buf, rep)
	out := buf.String()
	for _, want := range []string{"E10", "mapreduce", "tez", "llap", "ssdb-q1", "tpch-q6"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintFaults output missing %q", want)
		}
	}
}

// TestConcurrencyShape is the E14 smoke: a small client sweep must keep
// every concurrent result identical to the serial reference, finish with
// zero errors, and actually exercise preemption in the ablation pair.
func TestConcurrencyShape(t *testing.T) {
	rep, err := RunConcurrency(tinyCfg(), []int{1, 8}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if !r.Consistent {
			t.Errorf("%d clients: concurrent results diverged from serial reference", r.Clients)
		}
		if r.Errors > 0 {
			t.Errorf("%d clients: %d query errors", r.Clients, r.Errors)
		}
		if r.Queries == 0 || r.Throughput <= 0 {
			t.Errorf("%d clients: no throughput measured (%+v)", r.Clients, r)
		}
	}
	if rep.P95With == 0 || rep.P95Without == 0 {
		t.Errorf("preemption ablation missing: with=%v without=%v", rep.P95With, rep.P95Without)
	}
	var buf bytes.Buffer
	PrintConcurrency(&buf, rep)
	out := buf.String()
	for _, want := range []string{"E14", "clients", "preemption ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintConcurrency output missing %q", want)
		}
	}
}

// TestACIDShape is the E15 smoke: a small streaming ingest, reads racing
// background compaction (which must actually run), and the compaction
// ablation — all with the id-arithmetic consistency probe intact.
func TestACIDShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.DiskBandwidth = -1 // answers and counts, not timings
	rep, err := RunACID(cfg, 2000, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Error("a snapshot read diverged from the committed-transaction arithmetic")
	}
	if rep.RowsPerSec <= 0 || rep.IngestRows != 2000 {
		t.Errorf("ingest not measured: %+v", rep)
	}
	if rep.DeltasAfterIngest < rep.Batches/2 {
		t.Errorf("ingest left %d deltas, want about %d (streaming commits must produce deltas)",
			rep.DeltasAfterIngest, rep.Batches)
	}
	if rep.CompactionsDuring == 0 {
		t.Error("no compaction committed while reads ran; the read-under-compaction phase measured nothing")
	}
	if rep.ReadP95 == 0 || rep.P95Compacted == 0 || rep.P95Uncompacted == 0 {
		t.Errorf("missing latency quantiles: %+v", rep)
	}
	if rep.FilesCompacted >= rep.FilesUncompacted {
		t.Errorf("compaction did not shrink the file set: %d vs %d files",
			rep.FilesCompacted, rep.FilesUncompacted)
	}
	var buf bytes.Buffer
	PrintACID(&buf, rep)
	out := buf.String()
	for _, want := range []string{"E15", "rows/s", "reads under compaction", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintACID output missing %q", want)
		}
	}
}

// TestPruneBenchShape is the E18 smoke: at tiny scale the layout arm must
// still read >=5x fewer bytes than the baseline, the bucketed joins must
// shuffle nothing, and replica routing must keep a majority hit rate even
// with a divergent replica lost — all while every arm stays row-identical.
func TestPruneBenchShape(t *testing.T) {
	rep, err := RunPrune(EnvConfig{DiskBandwidth: -1}, 8000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent {
		t.Error("a layout arm returned different rows than its counterpart")
	}
	if rep.ScanBytesLayout*5 > rep.ScanBytesBase {
		t.Errorf("selective scan: layout read %d bytes, want <= 1/5 of baseline %d",
			rep.ScanBytesLayout, rep.ScanBytesBase)
	}
	if rep.StarBytesLayout >= rep.StarBytesBase {
		t.Errorf("star join: layout read %d bytes, baseline %d", rep.StarBytesLayout, rep.StarBytesBase)
	}
	if rep.ShuffleJoinBytes == 0 {
		t.Error("shuffle-join baseline shuffled no bytes")
	}
	if rep.BucketMapBytes != 0 || rep.SMBBytes != 0 {
		t.Errorf("bucketed joins shuffled bytes: bucket map %d, SMB %d", rep.BucketMapBytes, rep.SMBBytes)
	}
	if rep.HitRateAllUp <= 0.5 || rep.HitRateOneLost <= 0.5 {
		t.Errorf("replica routing hit rates too low: %.2f all up, %.2f one lost",
			rep.HitRateAllUp, rep.HitRateOneLost)
	}
	if rep.FallbacksOneLost == 0 {
		t.Error("losing a replica recorded no fallbacks")
	}
	var buf bytes.Buffer
	PrintPrune(&buf, rep)
	out := buf.String()
	for _, want := range []string{"E18", "SS-DB q1", "TPC-DS q27", "SMB", "replica routing"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintPrune output missing %q", want)
		}
	}
}
