// ablations.go measures the design choices DESIGN.md calls out (A1–A4):
// stripe size, dictionary encoding, vectorized batch size, and index-group
// granularity.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fileformat"
	"repro/internal/optimizer"
	"repro/internal/orc"
	"repro/internal/types"
	"repro/internal/vexec"
	"repro/internal/workload"
)

// AblationRow is one (parameter, metric) measurement.
type AblationRow struct {
	Param     string
	Elapsed   time.Duration
	BytesRead int64
	FileBytes int64
}

// RunStripeSizeAblation (A1) scans SS-DB query 1.hard over ORC files
// written with small (RCFile-like 4 MB) and large (ORC-default-like)
// stripes: larger stripes mean fewer stripes and less per-stripe overhead
// (§4.1's first improvement, confirmed by [28]).
func RunStripeSizeAblation(cfg EnvConfig) ([]AblationRow, error) {
	var out []AblationRow
	for _, stripe := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		c := cfg
		c.Format = fileformat.ORC
		c.ORCStripeSize = stripe
		env, _, err := NewEnv(c, SSDBTables())
		if err != nil {
			return nil, err
		}
		q := workload.SSDBQuery1(cfg.Scale.SSDBGrid)
		before := env.Driver.FS().Stats().Snapshot()
		res, err := env.Run(q)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Param:     fmt.Sprintf("stripe=%dKB", stripe>>10),
			Elapsed:   res.Stats.Elapsed,
			BytesRead: env.Driver.FS().Stats().Snapshot().Diff(before).BytesRead,
			FileBytes: env.TableBytes(),
		})
	}
	return out, nil
}

// RunDictionaryAblation (A2) writes a low-cardinality and a
// high-cardinality string column with the dictionary threshold at 0.8
// (adaptive) and at 0 (dictionary disabled), measuring file sizes: the
// adaptive writer should match the better choice on both datasets (§4.3).
func RunDictionaryAblation(rows int) ([]AblationRow, error) {
	var out []AblationRow
	schema := types.NewSchema(types.Col("s", types.Primitive(types.String)))
	cases := []struct {
		name string
		gen  func(i int) string
	}{
		{"low-cardinality", func(i int) string { return fmt.Sprintf("category-%02d", i%20) }},
		{"high-cardinality", func(i int) string { return fmt.Sprintf("unique-%08d-%08d", i, i*7919) }},
	}
	for _, c := range cases {
		for _, threshold := range []float64{orc.DefaultDictionaryThreshold, 1e-9} {
			env, _, err := NewEnv(EnvConfig{Scale: workload.Scale{}}, nil)
			if err != nil {
				return nil, err
			}
			loader, err := env.Driver.CreateTable("t", schema, fileformat.ORC,
				&fileformat.Options{ORCOptions: &orc.WriterOptions{DictionaryThreshold: threshold}})
			if err != nil {
				return nil, err
			}
			for i := 0; i < rows; i++ {
				if err := loader.Write(types.Row{c.gen(i)}); err != nil {
					return nil, err
				}
			}
			if err := loader.Close(); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s dict<=%.1f", c.name, threshold)
			if threshold < 1e-6 {
				label = c.name + " dict=off"
			}
			out = append(out, AblationRow{Param: label, FileBytes: env.TableBytes()})
		}
	}
	return out, nil
}

// RunBatchSizeAblation (A3) sweeps the vectorized batch size on the TPC-H
// q6 kernel; the paper picks 1024 to fit the processor cache (§6.1).
func RunBatchSizeAblation(cfg EnvConfig, sizes []int) ([]AblationRow, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024, 4096}
	}
	c := cfg
	c.Format = fileformat.ORC
	c.Opt = optimizer.Options{Vectorize: true}
	env, _, err := NewEnv(c, []TableSpec{{
		Name: "lineitem", Schema: workload.LineitemSchema(), Gen: workload.GenLineitem,
	}})
	if err != nil {
		return nil, err
	}
	defer vexec.SetBatchSize(0) // restore the default
	var out []AblationRow
	for _, size := range sizes {
		vexec.SetBatchSize(size)
		start := time.Now()
		if _, err := env.Run(workload.TPCHQ6()); err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Param:   fmt.Sprintf("batch=%d", size),
			Elapsed: time.Since(start),
		})
	}
	return out, nil
}

// RunIndexGroupAblation (A4) sweeps the row-index stride on SS-DB query
// 1.easy: smaller groups skip more precisely but cost more index bytes
// (§4.2's trade-off).
func RunIndexGroupAblation(cfg EnvConfig, strides []int) ([]AblationRow, error) {
	if len(strides) == 0 {
		grid := cfg.Scale.SSDBGrid
		strides = []int{grid / 8, grid / 2, grid * 2, grid * 16}
	}
	var out []AblationRow
	for _, stride := range strides {
		if stride <= 0 {
			continue
		}
		c := cfg
		c.Format = fileformat.ORC
		c.ORCStride = stride
		c.Opt = optimizer.Options{PredicatePushdown: true}
		env, _, err := NewEnv(c, SSDBTables())
		if err != nil {
			return nil, err
		}
		q := workload.SSDBQuery1(cfg.Scale.SSDBGrid / 4)
		before := env.Driver.FS().Stats().Snapshot()
		res, err := env.Run(q)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Param:     fmt.Sprintf("stride=%d", stride),
			Elapsed:   res.Stats.Elapsed,
			BytesRead: env.Driver.FS().Stats().Snapshot().Diff(before).BytesRead,
			FileBytes: env.TableBytes(),
		})
	}
	return out, nil
}

// PrintAblation renders one ablation series.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-28s %12s %14s %14s\n", "param", "elapsed(ms)", "bytesRead", "fileBytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12d %14d %14d\n", r.Param, r.Elapsed.Milliseconds(), r.BytesRead, r.FileBytes)
	}
}
