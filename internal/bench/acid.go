// acid.go drives E15, the ACID transactional-table experiment (the
// paper's §9 "advanced transaction support" outlook, realized as Hive
// ACID): streaming-ingest throughput through the server's transaction
// endpoint, read latency while background compaction is actively
// rewriting the table underneath the readers, and a with/without
// compaction ablation. Every read doubles as a correctness probe: the
// inserted ids are consecutive, so a snapshot that sees N rows must see
// exactly ids 0..N-1 — SUM(id) = N(N-1)/2 — and N must sit on a
// batch-commit boundary. A torn batch, a leaked uncommitted row, or a
// half-compacted file set all break the arithmetic.
package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/fileformat"
	"repro/internal/llap"
	"repro/internal/mapred"
	"repro/internal/orc"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/types"
)

// ACIDReport is E15's outcome.
type ACIDReport struct {
	// Ingest phase: writer sessions streaming batches concurrently.
	Writers           int
	Batches           int // committed transactions during ingest
	IngestRows        int64
	IngestWall        time.Duration
	RowsPerSec        float64
	DeltasAfterIngest int

	// Read-under-compaction phase: queries racing background compaction
	// and a churn writer.
	Reads             int
	ReadP50           time.Duration
	ReadP95           time.Duration
	CompactionsDuring int64 // compactions committed while reads ran
	ChurnRows         int64 // rows committed by the churn writer during reads
	Consistent        bool

	// Ablation: read p95 against a compacted vs never-compacted table.
	AblationReads    int
	P95Compacted     time.Duration
	P95Uncompacted   time.Duration
	FilesCompacted   int
	FilesUncompacted int
}

const (
	acidWriters    = 2
	churnBatchRows = 64
)

// acidReadQuery is the measurement query; COUNT and SUM(id) together form
// the snapshot-consistency probe (see checkRead).
const acidReadQuery = "SELECT COUNT(*), SUM(id) FROM events"

// eventsSchema is E15's table: consecutive ids, a group key, a payload.
func eventsSchema() *types.Schema {
	return types.NewSchema(
		types.Col("id", types.Primitive(types.Long)),
		types.Col("grp", types.Primitive(types.Long)),
		types.Col("val", types.Primitive(types.Long)),
	)
}

// newACIDBenchDriver builds a warehouse with one empty ACID table
// "events". autoCompact <0 disables background compaction, >0 sets the
// delta threshold.
func newACIDBenchDriver(cfg EnvConfig, autoCompact int) (*core.Driver, error) {
	c := cfg.withDefaults()
	fs := dfs.New(dfs.WithBlockSize(8<<20), dfs.WithSimulatedDisk(c.DiskBandwidth, c.SeekLatency))
	engine := mapred.NewEngine(mapred.Config{Slots: 4, JobLaunchOverhead: c.LaunchOverhead})
	d := core.NewDriver(fs, engine, core.Config{
		Engine:            core.ModeLLAP,
		Opt:               c.Opt,
		LLAP:              llap.Config{CacheBytes: c.LLAPCacheBytes},
		AutoCompactDeltas: autoCompact,
	})
	opts := fileformat.Options{ORCOptions: &orc.WriterOptions{
		RowIndexStride: c.ORCStride,
		StripeSize:     c.ORCStripeSize,
	}}
	if err := d.CreateACIDTable("events", eventsSchema(), &opts); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// acidRow builds the row for one consecutive id.
func acidRow(id int64) types.Row {
	return types.Row{id, id % 32, id % 97}
}

// ingest streams rows [0, total) into events through nWriters concurrent
// server sessions, batchesPerWriter commits each. Ids are split in
// contiguous halves, so once ingest completes every snapshot sees exactly
// ids 0..total-1. Returns the wall time of the concurrent ingest.
func ingest(d *core.Driver, total, nWriters, batchesPerWriter int) (time.Duration, error) {
	srv := server.New(d, server.ManagerConfig{Pools: []server.PoolConfig{
		{Name: "ingest", Slots: nWriters + 1, QueueDepth: 64},
	}})
	defer srv.Close()

	perWriter := total / nWriters
	var wg sync.WaitGroup
	errs := make([]error, nWriters)
	start := time.Now()
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := srv.OpenSession("")
			if err != nil {
				errs[w] = err
				return
			}
			defer sess.Close()
			st, err := sess.OpenStream("events")
			if err != nil {
				errs[w] = err
				return
			}
			lo := w * perWriter
			hi := lo + perWriter
			if w == nWriters-1 {
				hi = total
			}
			batchRows := perWriter / batchesPerWriter
			if batchRows == 0 {
				batchRows = 1
			}
			for i := lo; i < hi; i++ {
				if err := st.Write(acidRow(int64(i))); err != nil {
					errs[w] = err
					return
				}
				if (i-lo+1)%batchRows == 0 {
					if err := st.Commit(); err != nil {
						errs[w] = err
						return
					}
				}
			}
			errs[w] = st.Close()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// checkRead verifies the id arithmetic for one read: n rows seen means
// ids 0..n-1 exactly (SUM over a consecutive prefix), and any rows beyond
// the ingest floor must arrive in whole churn batches.
func checkRead(n, sum, ingested int64, batchRows int64) bool {
	if n < ingested || sum != n*(n-1)/2 {
		return false
	}
	return batchRows == 0 || (n-ingested)%batchRows == 0
}

// readCountSum runs the probe query once and decodes it.
func readCountSum(d *core.Driver) (n, sum int64, lat time.Duration, err error) {
	start := time.Now()
	res, err := d.Run(acidReadQuery)
	lat = time.Since(start)
	if err != nil {
		return 0, 0, lat, err
	}
	if len(res.Rows) != 1 {
		return 0, 0, lat, fmt.Errorf("probe returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0].(int64), res.Rows[0][1].(int64), lat, nil
}

// RunACID runs E15: ingest totalRows through concurrent streaming
// writers, measure read latency while compaction and a churn writer run,
// then the compaction ablation. reads is the query count of the
// measurement phases.
func RunACID(cfg EnvConfig, totalRows, batchesPerWriter, reads int) (*ACIDReport, error) {
	rep := &ACIDReport{
		Writers:       acidWriters,
		Batches:       acidWriters * batchesPerWriter,
		Reads:         reads,
		AblationReads: reads,
		Consistent:    true,
	}

	// Phase 1: ingest throughput. Auto-compaction stays off so the table
	// ends the phase with its full delta count — the worst case phase 2
	// starts from.
	d, err := newACIDBenchDriver(cfg, -1)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	wall, err := ingest(d, totalRows, acidWriters, batchesPerWriter)
	if err != nil {
		return nil, err
	}
	rep.IngestRows = int64(totalRows)
	rep.IngestWall = wall
	if wall > 0 {
		rep.RowsPerSec = float64(totalRows) / wall.Seconds()
	}
	man, err := d.Txns().ManifestOf("events")
	if err != nil {
		return nil, err
	}
	rep.DeltasAfterIngest = len(man.Deltas)

	// Phase 2: read latency while compaction is active. A churn writer
	// keeps committing small batches so the compactor always has fresh
	// input, and the compactor loops minor passes with a periodic major.
	mgr := d.Txns()
	before := mgr.Snapshot()
	stop := make(chan struct{})
	var bg sync.WaitGroup
	var churnRows atomic.Int64
	var bgErr atomic.Value // error
	bg.Add(1)
	go func() { // churn writer
		defer bg.Done()
		next := int64(totalRows)
		for {
			select {
			case <-stop:
				return
			default:
			}
			l, err := d.LoadACID("events")
			if err != nil {
				bgErr.Store(err)
				return
			}
			for i := 0; i < churnBatchRows; i++ {
				if err := l.Write(acidRow(next + int64(i))); err != nil {
					bgErr.Store(err)
					l.Abort()
					return
				}
			}
			if err := l.Close(); err != nil {
				bgErr.Store(err)
				return
			}
			next += churnBatchRows
			churnRows.Add(churnBatchRows)
			// Pace the churn: the phase measures read latency against a
			// compacting table, not against unbounded table growth.
			time.Sleep(2 * time.Millisecond)
		}
	}()
	bg.Add(1)
	go func() { // compactor
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			opts := txn.CompactOptions{Major: i%4 == 3}
			res, err := mgr.Compact("events", opts)
			if err != nil {
				bgErr.Store(err)
				return
			}
			if !res.Compacted {
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	var lats []time.Duration
	for i := 0; i < reads; i++ {
		n, sum, lat, err := readCountSum(d)
		if err != nil {
			close(stop)
			bg.Wait()
			return nil, err
		}
		lats = append(lats, lat)
		if !checkRead(n, sum, rep.IngestRows, churnBatchRows) {
			rep.Consistent = false
		}
	}
	close(stop)
	bg.Wait()
	if err, _ := bgErr.Load().(error); err != nil {
		return nil, err
	}
	diff := mgr.Snapshot().Diff(before)
	rep.CompactionsDuring = diff.CompactionsMinor + diff.CompactionsMajor
	rep.ChurnRows = churnRows.Load()
	rep.ReadP50 = quantileDur(lats, 0.50)
	rep.ReadP95 = quantileDur(lats, 0.95)

	// Phase 3: the ablation — identical ingest, then reads against a fully
	// compacted table vs the raw delta pile.
	measure := func(compacted bool) (time.Duration, int, error) {
		auto := -1
		if compacted {
			auto = 4
		}
		ad, err := newACIDBenchDriver(cfg, auto)
		if err != nil {
			return 0, 0, err
		}
		defer ad.Close()
		if _, err := ingest(ad, totalRows, acidWriters, batchesPerWriter); err != nil {
			return 0, 0, err
		}
		if compacted {
			if _, err := ad.Txns().Compact("events", txn.CompactOptions{Major: true}); err != nil {
				return 0, 0, err
			}
		}
		aman, err := ad.Txns().ManifestOf("events")
		if err != nil {
			return 0, 0, err
		}
		files := len(aman.Base)
		for _, dl := range aman.Deltas {
			files += len(dl.Files)
		}
		var alats []time.Duration
		for i := 0; i < reads; i++ {
			n, sum, lat, err := readCountSum(ad)
			if err != nil {
				return 0, 0, err
			}
			if n != int64(totalRows) || !checkRead(n, sum, int64(totalRows), 0) {
				rep.Consistent = false
			}
			alats = append(alats, lat)
		}
		return quantileDur(alats, 0.95), files, nil
	}
	if rep.P95Compacted, rep.FilesCompacted, err = measure(true); err != nil {
		return nil, err
	}
	if rep.P95Uncompacted, rep.FilesUncompacted, err = measure(false); err != nil {
		return nil, err
	}
	return rep, nil
}

// PrintACID renders the E15 report.
func PrintACID(w io.Writer, rep *ACIDReport) {
	fmt.Fprintln(w, "E15: ACID transactional tables (streaming ingest, snapshot reads under background compaction)")
	fmt.Fprintf(w, "ingest: %d rows via %d streaming writers, %d txns in %s (%.0f rows/s), %d deltas\n",
		rep.IngestRows, rep.Writers, rep.Batches, rep.IngestWall.Round(time.Millisecond),
		rep.RowsPerSec, rep.DeltasAfterIngest)
	ok := "yes"
	if !rep.Consistent {
		ok = "NO"
	}
	fmt.Fprintf(w, "reads under compaction: %d reads, p50 %s, p95 %s; %d compactions and %d churn rows during; consistent %s\n",
		rep.Reads, rep.ReadP50.Round(time.Microsecond), rep.ReadP95.Round(time.Microsecond),
		rep.CompactionsDuring, rep.ChurnRows, ok)
	fmt.Fprintf(w, "compaction ablation (%d reads): p95 %s over %d files compacted vs p95 %s over %d files uncompacted\n",
		rep.AblationReads, rep.P95Compacted.Round(time.Microsecond), rep.FilesCompacted,
		rep.P95Uncompacted.Round(time.Microsecond), rep.FilesUncompacted)
}
