// fig10.go reproduces Figure 10: SS-DB query 1 at easy/medium/hard
// selectivities over RCFile, ORC without predicate pushdown, and ORC with
// predicate pushdown — reporting elapsed time (10a) and the amount of data
// read from the DFS (10b).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fileformat"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Fig10Row is one (difficulty, configuration) measurement.
type Fig10Row struct {
	Difficulty string
	Config     string // "RCFile (No PPD)", "ORC File (No PPD)", "ORC File (PPD)"
	Elapsed    time.Duration
	BytesRead  int64
	Rows       int64 // matched rows (sanity)
	Sum        any   // SUM(v1) result (cross-config consistency)
}

// RunFig10 executes the three query variants against the three
// configurations.
func RunFig10(cfg EnvConfig) ([]Fig10Row, error) {
	grid := cfg.Scale.SSDBGrid
	difficulties := []struct {
		name string
		v    int
	}{
		{"1.easy", grid / 4},
		{"1.medium", grid / 2},
		{"1.hard", grid}, // all rows satisfy the predicates
	}
	configs := []struct {
		name   string
		format fileformat.Kind
		ppd    bool
	}{
		{"RCFile (No PPD)", fileformat.RC, false},
		{"ORC File (No PPD)", fileformat.ORC, false},
		{"ORC File (PPD)", fileformat.ORC, true},
	}
	var out []Fig10Row
	for _, c := range configs {
		envCfg := cfg
		envCfg.Format = c.format
		envCfg.Opt = optimizer.Options{PredicatePushdown: c.ppd}
		// Index groups must subdivide image rows for the y predicate to
		// prune, mirroring the paper's geometry (10k-value groups inside
		// 15k-pixel rows).
		if envCfg.ORCStride == 0 || envCfg.ORCStride > grid/2 {
			envCfg.ORCStride = maxInt(grid/2, 16)
		}
		env, _, err := NewEnv(envCfg, SSDBTables())
		if err != nil {
			return nil, err
		}
		for _, d := range difficulties {
			q := workload.SSDBQuery1(d.v)
			before := env.Driver.FS().Stats().Snapshot()
			res, err := env.Run(q)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", d.name, c.name, err)
			}
			read := env.Driver.FS().Stats().Snapshot().Diff(before).BytesRead
			row := Fig10Row{
				Difficulty: d.name,
				Config:     c.name,
				Elapsed:    res.Stats.Elapsed,
				BytesRead:  read,
			}
			if len(res.Rows) == 1 {
				row.Sum = res.Rows[0][0]
				if n, ok := res.Rows[0][1].(int64); ok {
					row.Rows = n
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// PrintFig10 renders both panels.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10(a): SS-DB query 1 elapsed times (ms)")
	printFig10Panel(w, rows, func(r Fig10Row) string {
		return fmt.Sprintf("%10d", r.Elapsed.Milliseconds())
	})
	fmt.Fprintln(w, "\nFigure 10(b): amounts of data read from DFS (MB)")
	printFig10Panel(w, rows, func(r Fig10Row) string {
		return fmt.Sprintf("%10.2f", mb(r.BytesRead))
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func printFig10Panel(w io.Writer, rows []Fig10Row, cell func(Fig10Row) string) {
	configs := []string{"RCFile (No PPD)", "ORC File (No PPD)", "ORC File (PPD)"}
	fmt.Fprintf(w, "%-10s %17s %17s %17s\n", "", configs[0], configs[1], configs[2])
	for _, d := range []string{"1.easy", "1.medium", "1.hard"} {
		fmt.Fprintf(w, "%-10s", d)
		for _, c := range configs {
			for _, r := range rows {
				if r.Difficulty == d && r.Config == c {
					fmt.Fprintf(w, " %17s", cell(r))
				}
			}
		}
		fmt.Fprintln(w)
	}
}
