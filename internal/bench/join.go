// join.go drives E13: the vectorized map-join experiment. TPC-DS query
// 27 — a five-table star join — runs under the row-mode engine, the
// vectorized engine (cold builds), and LLAP with a warm build cache
// (second run onward: every small-table hash table served from the
// daemon). Reported per configuration: wall-clock, cumulative CPU, hash
// builds/reuses/cache hits and probe batches, plus the row-vs-vectorized
// and row-vs-warm speedups.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/fileformat"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/workload"
)

// JoinRow is one configuration's measurement.
type JoinRow struct {
	Config        string
	Elapsed       time.Duration
	CumulativeCPU time.Duration
	// Builds counts small-table hash tables built from a scan; Reused
	// counts tasks that picked up another task's table; Cached counts
	// tables served from the LLAP daemon's build cache.
	Builds, Reused, Cached int64
	// Batches is the number of probe batches the vectorized map-join
	// consumed (0 under the row engine).
	Batches int64
	Rows    int
}

// JoinReport bundles E13's outputs.
type JoinReport struct {
	Runs []JoinRow
	// VecSpeedup is row-engine elapsed over vectorized cold elapsed;
	// WarmSpeedup is row-engine elapsed over LLAP warm elapsed;
	// ProbeSpeedup compares the two warm-LLAP runs (row vs vectorized
	// probe with builds cached on both sides — the probe loop isolated).
	VecSpeedup   float64
	WarmSpeedup  float64
	ProbeSpeedup float64
	// Consistent reports whether every configuration returned the row
	// engine's rows.
	Consistent bool
	Mismatches []string
}

// q27Tables is the subset of the TPC-DS dataset query 27 touches: the
// store_sales fact table and its four dimensions.
func q27Tables() []TableSpec {
	return []TableSpec{
		{"store_sales", workload.StoreSalesSchema(), workload.GenStoreSales},
		{"customer_demographics", workload.CustomerDemographicsSchema(), workload.GenCustomerDemographics},
		{"date_dim", workload.DateDimSchema(), workload.GenDateDim},
		{"store", workload.StoreSchema(), workload.GenStore},
		{"item", workload.ItemSchema(), workload.GenItem},
	}
}

// joinEnvCfg normalizes the experiment configuration: ORC storage, every
// optimization on, dimensions under the map-join threshold, and no
// simulated disk or launch overhead — the experiment isolates the join's
// CPU cost, which accounted I/O time would dilute equally on both sides.
func joinEnvCfg(cfg EnvConfig) EnvConfig {
	out := cfg
	out.Format = fileformat.ORC
	out.Opt = allOnWithThreshold()
	out.DiskBandwidth = -1
	out.LaunchOverhead = 0
	return out
}

// joinStats sums the hash-build counters and probe batches over every
// MapJoin node of a profiled plan.
func joinStats(p *plan.Plan, prof *obs.PlanProfile) (builds, reused, cached, batches int64) {
	for _, n := range p.Find(func(n plan.Node) bool { _, ok := n.(*plan.MapJoin); return ok }) {
		if st := prof.Lookup(n.Base().ID); st != nil {
			builds += st.HashBuilds.Load()
			reused += st.HashReused.Load()
			cached += st.HashCached.Load()
			batches += st.Batches.Load()
		}
	}
	return
}

// joinMeasure runs the query once profiled and converts it to a JoinRow.
func joinMeasure(env *Env, name, query string) (JoinRow, []interface{}, error) {
	res, p, prof, err := env.Driver.RunProfiled(context.Background(), query)
	if err != nil {
		return JoinRow{}, nil, fmt.Errorf("bench: join %s: %w", name, err)
	}
	builds, reused, cached, batches := joinStats(p, prof)
	return JoinRow{
		Config:        name,
		Elapsed:       res.Stats.Elapsed,
		CumulativeCPU: res.Stats.CumulativeCPU,
		Builds:        builds,
		Reused:        reused,
		Cached:        cached,
		Batches:       batches,
		Rows:          len(res.Rows),
	}, flattenRows(res), nil
}

// joinBest re-runs a measurement and keeps the fastest run (counters are
// per-query, so any run's counters are representative).
func joinBest(env *Env, name, query string, runs int) (JoinRow, []interface{}, error) {
	best, rows, err := joinMeasure(env, name, query)
	if err != nil {
		return JoinRow{}, nil, err
	}
	for i := 1; i < runs; i++ {
		r, _, err := joinMeasure(env, name, query)
		if err != nil {
			return JoinRow{}, nil, err
		}
		if r.Elapsed < best.Elapsed {
			best = r
		}
	}
	return best, rows, nil
}

// RunJoin measures the star join under the three configurations and
// cross-checks their results.
func RunJoin(cfg EnvConfig, runs int) (*JoinReport, error) {
	if runs <= 0 {
		runs = 3
	}
	base := joinEnvCfg(cfg)
	query := workload.TPCDSQ27()
	rep := &JoinReport{Consistent: true}

	// Row-mode reference: Tez-style engine, vectorization off.
	rowCfg := base
	rowCfg.Tez = true
	rowCfg.Opt.Vectorize = false
	rowEnv, _, err := NewEnv(rowCfg, q27Tables())
	if err != nil {
		return nil, err
	}
	rowRun, want, err := joinBest(rowEnv, "row (tez)", query, runs)
	rowEnv.Driver.Close()
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, rowRun)

	// Vectorized cold: same engine, vectorized probe, builds every query.
	vecCfg := base
	vecCfg.Tez = true
	vecEnv, _, err := NewEnv(vecCfg, q27Tables())
	if err != nil {
		return nil, err
	}
	vecRun, vecRows, err := joinBest(vecEnv, "vectorized (tez)", query, runs)
	vecEnv.Driver.Close()
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, vecRun)

	// LLAP row-mode: the daemon's build cache works for the row engine
	// too, so its warm runs isolate the row-mode probe cost.
	llapRowCfg := base
	llapRowCfg.LLAP = true
	llapRowCfg.Opt.Vectorize = false
	llapRowEnv, _, err := NewEnv(llapRowCfg, q27Tables())
	if err != nil {
		return nil, err
	}
	if _, _, err := joinMeasure(llapRowEnv, "llap warm (row)", query); err != nil {
		llapRowEnv.Driver.Close()
		return nil, err
	}
	warmRowRun, warmRowRows, err := joinBest(llapRowEnv, "llap warm (row)", query, runs)
	llapRowEnv.Driver.Close()
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, warmRowRun)

	// LLAP vectorized: the first query builds and populates the daemon's
	// build cache; warm runs probe daemon-cached tables without building.
	llapCfg := base
	llapCfg.LLAP = true
	llapEnv, _, err := NewEnv(llapCfg, q27Tables())
	if err != nil {
		return nil, err
	}
	coldRun, coldRows, err := joinMeasure(llapEnv, "llap cold", query)
	if err != nil {
		llapEnv.Driver.Close()
		return nil, err
	}
	rep.Runs = append(rep.Runs, coldRun)
	warmRun, warmRows, err := joinBest(llapEnv, "llap warm", query, runs)
	llapEnv.Driver.Close()
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, warmRun)

	if vecRun.Elapsed > 0 {
		rep.VecSpeedup = float64(rowRun.Elapsed) / float64(vecRun.Elapsed)
	}
	if warmRun.Elapsed > 0 {
		rep.WarmSpeedup = float64(rowRun.Elapsed) / float64(warmRun.Elapsed)
		rep.ProbeSpeedup = float64(warmRowRun.Elapsed) / float64(warmRun.Elapsed)
	}
	for _, o := range []struct {
		name string
		rows []interface{}
	}{{"vectorized", vecRows}, {"llap warm (row)", warmRowRows},
		{"llap cold", coldRows}, {"llap warm", warmRows}} {
		if msg := compareResults(want, o.rows); msg != "" {
			rep.Consistent = false
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s vs row: %s", o.name, msg))
		}
	}
	return rep, nil
}

// PrintJoin renders the experiment.
func PrintJoin(w io.Writer, rep *JoinReport) {
	fmt.Fprintln(w, "E13: vectorized map-join — TPC-DS q27 star join (5 tables)")
	fmt.Fprintf(w, "%-18s %12s %12s %7s %7s %7s %8s %6s\n",
		"config", "elapsed(ms)", "cpu(ms)", "builds", "reused", "cached", "batches", "rows")
	for _, r := range rep.Runs {
		fmt.Fprintf(w, "%-18s %12d %12d %7d %7d %7d %8d %6d\n",
			r.Config, r.Elapsed.Milliseconds(), r.CumulativeCPU.Milliseconds(),
			r.Builds, r.Reused, r.Cached, r.Batches, r.Rows)
	}
	fmt.Fprintf(w, "vectorized cold: %.2fx over row engine; warm LLAP: %.2fx over cold row\n",
		rep.VecSpeedup, rep.WarmSpeedup)
	fmt.Fprintf(w, "probe loop isolated (warm row vs warm vectorized, builds cached on both): %.2fx\n",
		rep.ProbeSpeedup)
	if rep.Consistent {
		fmt.Fprintln(w, "Results identical across row / vectorized / llap cold / llap warm.")
	} else {
		fmt.Fprintln(w, "RESULT MISMATCHES:")
		for _, m := range rep.Mismatches {
			fmt.Fprintln(w, "  "+m)
		}
	}
}

// allOnWithThreshold is AllOn with the benchmark map-join threshold that
// keeps q27's dimensions eligible while store_sales stays streamed.
func allOnWithThreshold() optimizer.Options {
	o := optimizer.AllOn()
	o.MapJoinThreshold = fig11MapJoinThreshold
	return o
}
