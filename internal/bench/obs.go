// obs.go drives the observability experiment (E12): TPC-H query 6 against
// the LLAP daemon layer, cold then warm, with span tracing and per-operator
// profiling on. The point is attribution, not speed: the warm run's byte
// savings must be visible *at the scan operator* (DFS bytes shift to cache
// bytes on the same plan node), the per-operator byte totals must reconcile
// exactly with the query's top-level ExecStats, and the unified metrics
// registry must show the same story as a counter diff. A final faulted run
// exercises span coverage down to retried and speculative task attempts.
package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
)

// ObsRow is one profiled run's scan-level attribution.
type ObsRow struct {
	Run        string // "cold" / "warm" / "faulted"
	Elapsed    time.Duration
	ScanDFS    int64 // DFS bytes charged to scan operators by the profile
	ScanCache  int64 // cache-served decompressed bytes charged to scans
	TotalBytes int64 // ExecStats.TotalBytesRead
	// Reconciled is ScanDFS+ScanCache == TotalBytesRead; exact for
	// fault-free runs (read-fault retries can re-read DFS ranges).
	Reconciled bool
	Rows       int
}

// ObsReport bundles the experiment's outputs.
type ObsReport struct {
	Query string
	Runs  []ObsRow
	// AnnotatedPlan is the warm run's EXPLAIN ANALYZE tree: the cache hit
	// shows up as dfs=0 cache=N on the scan line.
	AnnotatedPlan []string
	// RegistryDiff is the unified-registry delta over the warm run.
	RegistryDiff string
	// Span census over the whole trace (cold + warm + faulted).
	SpanCounts  map[string]int // by category
	TaskSpans   int
	RetrySpans  int // task spans with attempt > 0
	SpecSpans   int // task spans flagged speculative
	TraceWrites string // path the trace was written to, "" if none
}

// profiledRun executes one traced, profiled query under a named phase span
// and folds its scan-operator attribution.
func profiledRun(env *Env, ctx0 context.Context, name, sql string) (ObsRow, []string, error) {
	ctx, sp := obs.StartSpan(ctx0, name, obs.CatPhase)
	res, p, prof, err := env.Driver.RunProfiled(ctx, sql)
	sp.FinishErr(err)
	if err != nil {
		return ObsRow{}, nil, fmt.Errorf("bench: obs %s: %w", name, err)
	}
	row := ObsRow{Run: name, Elapsed: res.Stats.Elapsed, TotalBytes: res.Stats.TotalBytesRead, Rows: len(res.Rows)}
	p.Walk(func(n plan.Node) {
		if _, ok := n.(*plan.TableScan); !ok {
			return
		}
		if st := prof.Lookup(n.Base().ID); st != nil {
			row.ScanDFS += st.IO.DFSBytes.Load()
			row.ScanCache += st.IO.CacheBytes.Load()
		}
	})
	row.Reconciled = row.ScanDFS+row.ScanCache == row.TotalBytes
	return row, core.RenderAnalyzedPlan(p, prof, res), nil
}

// RunObs runs the experiment; tracePath, when non-empty, receives the
// combined Chrome trace_event file (open in chrome://tracing or Perfetto).
func RunObs(cfg EnvConfig, seed int64, tracePath string) (*ObsReport, error) {
	base := llapEnvCfg(cfg)
	base.LLAP = true
	if base.RowsPerFile > 4000 {
		base.RowsPerFile = 4000 // several files -> several task-attempt spans
	}
	sql := llapQueries(base)[1] // tpch-q6: one scan, vectorizable
	rep := &ObsReport{Query: sql.name, SpanCounts: map[string]int{}}

	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)

	env, _, err := NewEnv(base, sql.tables)
	if err != nil {
		return nil, err
	}
	reg := env.Driver.Registry()

	cold, _, err := profiledRun(env, ctx, "cold", sql.sql)
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, cold)

	env.Driver.Registry() // daemon exists now: adopt the LLAP counters
	before := reg.Snapshot()
	warm, planLines, err := profiledRun(env, ctx, "warm", sql.sql)
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, warm)
	rep.AnnotatedPlan = planLines
	rep.RegistryDiff = reg.Snapshot().Diff(before).String()
	env.Driver.Close()

	// Faulted run: same query, fresh environment, seeded fault policy. Its
	// value here is span coverage — the trace must contain the retried and
	// speculative attempts, attributed per attempt.
	faultyCfg := base
	faultyCfg.Faults = DefaultFaultConfig(seed)
	// Stragglers at half the tasks: the trace should show a speculative
	// attempt racing (and losing to, or beating) a delayed original.
	faultyCfg.Faults.StragglerProb = 0.5
	fenv, _, err := NewEnv(faultyCfg, sql.tables)
	if err != nil {
		return nil, err
	}
	faulted, _, err := profiledRun(fenv, ctx, "faulted", sql.sql)
	if err != nil {
		return nil, err
	}
	rep.Runs = append(rep.Runs, faulted)
	fenv.Driver.Close()

	for _, sd := range tracer.Spans() {
		rep.SpanCounts[sd.Cat]++
		if sd.Cat != obs.CatTask {
			continue
		}
		rep.TaskSpans++
		for _, a := range sd.Attrs {
			switch a.Key {
			case "attempt":
				if n, ok := a.Val.(int); ok && n > 0 {
					rep.RetrySpans++
				}
			case "speculative":
				if b, ok := a.Val.(bool); ok && b {
					rep.SpecSpans++
				}
			}
		}
	}
	if tracePath != "" {
		if err := tracer.WriteFile(tracePath); err != nil {
			return nil, err
		}
		rep.TraceWrites = tracePath
	}
	return rep, nil
}

// PrintObs renders the experiment.
func PrintObs(w io.Writer, rep *ObsReport) {
	fmt.Fprintf(w, "E12: query observability (%s on the LLAP daemon; spans + per-operator profiles + registry diff)\n", rep.Query)
	fmt.Fprintf(w, "%-8s %12s %14s %14s %14s %10s\n",
		"run", "elapsed(ms)", "scan dfs(B)", "scan cache(B)", "total(B)", "reconciled")
	for _, r := range rep.Runs {
		fmt.Fprintf(w, "%-8s %12d %14d %14d %14d %10v\n",
			r.Run, r.Elapsed.Milliseconds(), r.ScanDFS, r.ScanCache, r.TotalBytes, r.Reconciled)
	}
	fmt.Fprintln(w, "\nwarm-run EXPLAIN ANALYZE (the scan line shows the cache doing the work):")
	for _, l := range rep.AnnotatedPlan {
		fmt.Fprintln(w, "  "+l)
	}
	fmt.Fprintln(w, "\nwarm-run registry diff (counters delta, gauges current):")
	fmt.Fprint(w, indent(rep.RegistryDiff, "  "))
	fmt.Fprintf(w, "\ntrace: %d spans", totalSpans(rep.SpanCounts))
	for _, cat := range []string{obs.CatQuery, obs.CatPhase, obs.CatJob, obs.CatTask, obs.CatOp} {
		fmt.Fprintf(w, " %s=%d", cat, rep.SpanCounts[cat])
	}
	fmt.Fprintf(w, "\n  task attempts: %d total, %d retries, %d speculative (from the faulted run)\n",
		rep.TaskSpans, rep.RetrySpans, rep.SpecSpans)
	if rep.TraceWrites != "" {
		fmt.Fprintf(w, "  written to %s — open in chrome://tracing or https://ui.perfetto.dev\n", rep.TraceWrites)
	}
}

func indent(s, pad string) string {
	if s == "" {
		return ""
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func totalSpans(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
