// cbo.go drives E16: cost-based optimization from catalog statistics. A
// q27-style star join is written with its dimensions in a deliberately
// bad order — the fanning-out demographics dimension first, the selective
// promotion dimension last — and runs once under the heuristic planner
// (query order) and once under CBO (statistics order). Reported per
// configuration: wall-clock, bytes read, shuffle volume, which dimension
// joined first, and for the CBO run the per-operator estimate-vs-actual
// row error that EXPLAIN ANALYZE surfaces.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/fileformat"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/workload"
)

// CBORow is one configuration's measurement.
type CBORow struct {
	Config       string
	Elapsed      time.Duration
	BytesRead    int64
	ShuffleBytes int64
	Rows         int
	// FirstDim is the dimension the plan joins against the fact table
	// first — the observable join-order decision.
	FirstDim string
	// MeanEstErr is the mean relative |estimated − actual| row error over
	// operators carrying estimates (0 for the heuristic run, which has
	// none); EstOps counts those operators.
	MeanEstErr float64
	EstOps     int
}

// CBOReport bundles E16's outputs.
type CBOReport struct {
	Runs []CBORow
	// OrderChanged reports whether CBO picked a different first dimension
	// than the query's textual order — the experiment's headline claim.
	OrderChanged bool
	// Speedup is heuristic elapsed over CBO elapsed.
	Speedup    float64
	Consistent bool
	Mismatches []string
}

// cboTables is the skewed star: sales fans out 15× into cust_demo
// (duplicate keys) and matches at most 6 of its 8 promotion keys in
// promo, so statistics order (promo first) beats query order.
func cboTables() []TableSpec {
	fact := types.NewSchema(
		types.Col("cd_key", types.Primitive(types.Long)),
		types.Col("promo_key", types.Primitive(types.Long)),
		types.Col("qty", types.Primitive(types.Long)),
		types.Col("price", types.Primitive(types.Double)),
	)
	demo := types.NewSchema(
		types.Col("cd_id", types.Primitive(types.Long)),
		types.Col("band", types.Primitive(types.String)),
	)
	promo := types.NewSchema(
		types.Col("p_id", types.Primitive(types.Long)),
		types.Col("p_name", types.Primitive(types.String)),
	)
	return []TableSpec{
		{"sales", fact, func(sc workload.Scale, emit workload.Emit) error {
			for i := 0; i < sc.StoreSales; i++ {
				err := emit(types.Row{int64(i % 40), int64(i % 8), int64(i % 5), float64(i%100) / 3})
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{"cust_demo", demo, func(sc workload.Scale, emit workload.Emit) error {
			for i := 0; i < sc.StoreSales/15; i++ {
				if err := emit(types.Row{int64(i % 40), fmt.Sprintf("band%d", i%7)}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"promo", promo, func(sc workload.Scale, emit workload.Emit) error {
			for i := 0; i < 6; i++ {
				if err := emit(types.Row{int64(i), fmt.Sprintf("promo%d", i)}); err != nil {
					return err
				}
			}
			return nil
		}},
	}
}

// cboQuery lists the fanning-out dimension first on purpose.
const cboQuery = `SELECT count(*), sum(sales.price) FROM sales
	JOIN cust_demo ON sales.cd_key = cust_demo.cd_id
	JOIN promo ON sales.promo_key = promo.p_id`

// cboFirstDim names the dimension on the tag-1 side of the join whose
// tag-0 (spine) side reaches the sales scan.
func cboFirstDim(p *plan.Plan) string {
	var dim string
	p.Walk(func(n plan.Node) {
		j, ok := n.(*plan.Join)
		if !ok || len(j.Parents) != 2 {
			return
		}
		if cboScans(j.Parents[0])["sales"] {
			for name := range cboScans(j.Parents[1]) {
				dim = name
			}
		}
	})
	return dim
}

func cboScans(n plan.Node) map[string]bool {
	out := map[string]bool{}
	seen := map[plan.Node]bool{}
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if ts, ok := n.(*plan.TableScan); ok && !strings.HasPrefix(ts.Table, "_tmp_") {
			out[ts.Table] = true
		}
		for _, p := range n.Base().Parents {
			walk(p)
		}
	}
	walk(n)
	return out
}

// cboEstError averages the relative estimate error over every operator
// that both carries an estimate and committed a runtime profile.
func cboEstError(p *plan.Plan, prof *obs.PlanProfile) (float64, int) {
	var sum float64
	var n int
	p.Walk(func(node plan.Node) {
		b := node.Base()
		if !b.EstSet {
			return
		}
		st := prof.Lookup(b.ID)
		if st == nil {
			return
		}
		actual := float64(st.Rows.Load())
		sum += math.Abs(float64(b.EstRows)-actual) / math.Max(actual, 1)
		n++
	})
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func cboMeasure(env *Env, name string) (CBORow, []interface{}, error) {
	res, p, prof, err := env.Driver.RunProfiled(context.Background(), cboQuery)
	if err != nil {
		return CBORow{}, nil, fmt.Errorf("bench: cbo %s: %w", name, err)
	}
	errRate, estOps := cboEstError(p, prof)
	return CBORow{
		Config:       name,
		Elapsed:      res.Stats.Elapsed,
		BytesRead:    res.Stats.TotalBytesRead,
		ShuffleBytes: res.Stats.ShuffleBytes,
		Rows:         len(res.Rows),
		FirstDim:     cboFirstDim(p),
		MeanEstErr:   errRate,
		EstOps:       estOps,
	}, flattenRows(res), nil
}

// RunCBO measures the star join under the heuristic planner and under
// CBO, keeping the fastest of runs repetitions per configuration.
func RunCBO(cfg EnvConfig, runs int) (*CBOReport, error) {
	if runs <= 0 {
		runs = 3
	}
	base := cfg
	base.Format = fileformat.ORC
	base.Tez = true
	base.DiskBandwidth = -1
	base.LaunchOverhead = 0
	// Shuffle joins only: map-join conversion would hash-build both tiny
	// dimensions and mask the join-order effect this experiment isolates.
	base.Opt = optimizer.Options{PredicatePushdown: true, Correlation: false}

	rep := &CBOReport{Consistent: true}
	var want []interface{}
	for _, c := range []struct {
		name string
		cbo  bool
	}{{"heuristic", false}, {"cbo", true}} {
		ecfg := base
		ecfg.Opt.CBO = c.cbo
		env, _, err := NewEnv(ecfg, cboTables())
		if err != nil {
			return nil, err
		}
		best, rows, err := cboMeasure(env, c.name)
		if err != nil {
			env.Driver.Close()
			return nil, err
		}
		for i := 1; i < runs; i++ {
			r, _, err := cboMeasure(env, c.name)
			if err != nil {
				env.Driver.Close()
				return nil, err
			}
			if r.Elapsed < best.Elapsed {
				best = r
			}
		}
		env.Driver.Close()
		rep.Runs = append(rep.Runs, best)
		if want == nil {
			want = rows
		} else if msg := compareResults(want, rows); msg != "" {
			rep.Consistent = false
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s vs heuristic: %s", c.name, msg))
		}
	}
	h, c := rep.Runs[0], rep.Runs[1]
	rep.OrderChanged = h.FirstDim != c.FirstDim
	if c.Elapsed > 0 {
		rep.Speedup = float64(h.Elapsed) / float64(c.Elapsed)
	}
	return rep, nil
}

// PrintCBO renders the experiment.
func PrintCBO(w io.Writer, rep *CBOReport) {
	fmt.Fprintln(w, "E16: cost-based join ordering from ORC statistics — skewed star join")
	fmt.Fprintf(w, "%-10s %12s %12s %13s %6s %-10s %10s %7s\n",
		"config", "elapsed(ms)", "bytes", "shuffle", "rows", "first dim", "est err", "est ops")
	for _, r := range rep.Runs {
		fmt.Fprintf(w, "%-10s %12d %12d %13d %6d %-10s %9.1f%% %7d\n",
			r.Config, r.Elapsed.Milliseconds(), r.BytesRead, r.ShuffleBytes,
			r.Rows, r.FirstDim, 100*r.MeanEstErr, r.EstOps)
	}
	if rep.OrderChanged {
		fmt.Fprintf(w, "CBO reordered the chain (%s first instead of %s): %.2fx elapsed\n",
			rep.Runs[1].FirstDim, rep.Runs[0].FirstDim, rep.Speedup)
	} else {
		fmt.Fprintln(w, "CBO kept the textual join order")
	}
	if rep.Consistent {
		fmt.Fprintln(w, "Results identical across heuristic and CBO plans.")
	} else {
		fmt.Fprintln(w, "RESULT MISMATCHES:")
		for _, m := range rep.Mismatches {
			fmt.Fprintln(w, "  "+m)
		}
	}
}
