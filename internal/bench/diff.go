// diff.go drives the differential query fuzzer experiment (E11): a
// seeded qcheck run over the full {engine × format × pushdown × faults}
// matrix. The paper's engineering claim — ORC, the optimized planner,
// vectorized execution and the newer engines change how queries run, not
// what they return — becomes a falsifiable statement here: N random
// queries, every cell must match the unoptimized MapReduce-over-text
// reference, any disagreement gets shrunk to a replayable repro.
package bench

import (
	"fmt"
	"io"

	"repro/internal/qcheck"
)

// RunDiff runs the E11 fuzzing pass. Same seed, same queries, same
// verdicts: the report's fingerprint is reproducible across runs.
func RunDiff(seed int64, queries int, progress io.Writer) (*qcheck.Report, error) {
	cfg := qcheck.Config{
		Seed:       seed,
		Queries:    queries,
		FullFaults: true,
	}
	if progress != nil {
		cfg.Progress = func(line string) { fmt.Fprintln(progress, "  "+line) }
	}
	return qcheck.Run(cfg)
}

// PrintDiff renders the experiment; disagreements print as ready-to-commit
// corpus entries (see internal/qcheck/testdata).
func PrintDiff(w io.Writer, rep *qcheck.Report) {
	fmt.Fprintf(w, "E11: differential query fuzzer (seed %d)\n", rep.Seed)
	fmt.Fprintf(w, "%d queries over %d tables, %d matrix cells, %d query executions\n",
		rep.Queries, rep.Scenarios, rep.Cells, rep.Executions)
	fmt.Fprintf(w, "verdict fingerprint: %016x (same seed must reproduce this exactly)\n", rep.Fingerprint)
	if len(rep.Failures) == 0 {
		fmt.Fprintln(w, "All cells agreed with the reference (mapreduce/text, optimizations off) on every query.")
		return
	}
	fmt.Fprintf(w, "DISAGREEMENTS: %d\n", len(rep.Failures))
	for i, f := range rep.Failures {
		fmt.Fprintf(w, "--- disagreement %d: %s: %s\n", i+1, f.Cell.ID(), f.Detail)
		fmt.Fprintf(w, "    query: %s\n", f.Query)
		if f.Repro != nil {
			fmt.Fprintf(w, "    shrunk repro (save as internal/qcheck/testdata/<name>.q):\n")
			fmt.Fprint(w, qcheck.FormatEntry(qcheck.ReproEntry(
				fmt.Sprintf("repro-%d", i+1), "skipped", f.Repro)))
		}
	}
}
