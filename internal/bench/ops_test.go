package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestOpsShape is the E17 smoke: both arms must answer byte-identically
// with zero errors, the observed arm's history must actually record (and
// the live HTTP scraper must actually scrape), and the print path must
// stay in sync with the report.
func TestOpsShape(t *testing.T) {
	rep, err := RunOps(tinyCfg(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []struct {
		name string
		row  ConcurrencyRow
	}{{"baseline", rep.Baseline}, {"observed", rep.Observed}} {
		if !arm.row.Consistent {
			t.Errorf("%s arm diverged from the serial reference", arm.name)
		}
		if arm.row.Errors > 0 {
			t.Errorf("%s arm: %d query errors", arm.name, arm.row.Errors)
		}
		if arm.row.Queries == 0 || arm.row.Throughput <= 0 {
			t.Errorf("%s arm: no throughput measured (%+v)", arm.name, arm.row)
		}
	}
	if rep.Recorded == 0 {
		t.Error("observed arm recorded no queries")
	}
	if rep.Scrapes == 0 {
		t.Error("scraper never scraped the admin plane")
	}
	if rep.ScrapeErrors > 0 {
		t.Errorf("%d scrape errors against the admin plane", rep.ScrapeErrors)
	}
	if rep.MetricsBytes == 0 {
		t.Error("no /metrics exposition observed")
	}

	var buf bytes.Buffer
	PrintOps(&buf, rep)
	out := buf.String()
	for _, want := range []string{"E17", "baseline", "observed", "overhead", "scrapes"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintOps output missing %q", want)
		}
	}
}
