// fig11.go reproduces Figure 11: the query-planning experiments. 11(a)
// runs TPC-DS query 27 with and without elimination of unnecessary Map
// phases; 11(b) runs the flattened TPC-DS query 95 under the three
// configurations (w/ UM CO=off, w/ UM CO=on, w/o UM CO=on).
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Fig11Row is one (query, configuration) measurement.
type Fig11Row struct {
	Query       string
	Config      string
	Jobs        int64
	MapOnlyJobs int
	Elapsed     time.Duration
	Rows        int
	// FirstRow fingerprints the result for cross-config consistency.
	FirstRow string
}

// fig11MapJoinThreshold keeps dimension tables map-join eligible while the
// fact tables stay streamed at benchmark scale.
const fig11MapJoinThreshold = 256 << 10

func runFig11Config(cfg EnvConfig, query, name string, opt optimizer.Options) (Fig11Row, error) {
	envCfg := cfg
	opt.MapJoinThreshold = fig11MapJoinThreshold
	envCfg.Opt = opt
	env, _, err := NewEnv(envCfg, TPCDSTables())
	if err != nil {
		return Fig11Row{}, err
	}
	_, compiled, err := env.Driver.Explain(query)
	if err != nil {
		return Fig11Row{}, fmt.Errorf("bench: explain under %s: %w", name, err)
	}
	res, err := env.Run(query)
	if err != nil {
		return Fig11Row{}, fmt.Errorf("bench: run under %s: %w", name, err)
	}
	row := Fig11Row{
		Config:      name,
		Jobs:        int64(compiled.NumJobs()),
		MapOnlyJobs: compiled.NumMapOnlyJobs(),
		Elapsed:     res.Stats.Elapsed,
		Rows:        len(res.Rows),
	}
	if len(res.Rows) > 0 {
		row.FirstRow = fmt.Sprint(res.Rows[0])
	}
	return row, nil
}

// RunFig11a measures TPC-DS query 27 with unnecessary Map phases (map
// joins materialized as Map-only jobs) and without (merged).
func RunFig11a(cfg EnvConfig) ([]Fig11Row, error) {
	configs := []struct {
		name string
		opt  optimizer.Options
	}{
		{"w/ UM", optimizer.Options{MapJoinConversion: true, MergeMapOnlyJobs: false}},
		{"w/o UM", optimizer.Options{MapJoinConversion: true, MergeMapOnlyJobs: true}},
	}
	var out []Fig11Row
	for _, c := range configs {
		row, err := runFig11Config(cfg, workload.TPCDSQ27(), c.name, c.opt)
		if err != nil {
			return nil, err
		}
		row.Query = "q27"
		out = append(out, row)
	}
	return out, nil
}

// RunFig11b measures the flattened TPC-DS query 95 under the paper's three
// configurations.
func RunFig11b(cfg EnvConfig) ([]Fig11Row, error) {
	configs := []struct {
		name string
		opt  optimizer.Options
	}{
		{"w/ UM CO=off", optimizer.Options{MapJoinConversion: true, MergeMapOnlyJobs: false}},
		{"w/ UM CO=on", optimizer.Options{MapJoinConversion: true, MergeMapOnlyJobs: false, Correlation: true}},
		{"w/o UM CO=on", optimizer.Options{MapJoinConversion: true, MergeMapOnlyJobs: true, Correlation: true}},
	}
	var out []Fig11Row
	for _, c := range configs {
		row, err := runFig11Config(cfg, workload.TPCDSQ95(), c.name, c.opt)
		if err != nil {
			return nil, err
		}
		row.Query = "q95"
		out = append(out, row)
	}
	return out, nil
}

// PrintFig11 renders one panel.
func PrintFig11(w io.Writer, title string, rows []Fig11Row) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-14s %6s %9s %12s %8s\n", "config", "jobs", "map-only", "elapsed(ms)", "rows")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6d %9d %12d %8d\n",
			r.Config, r.Jobs, r.MapOnlyJobs, r.Elapsed.Milliseconds(), r.Rows)
	}
	if len(rows) > 1 {
		base := rows[0].Elapsed
		best := rows[len(rows)-1].Elapsed
		if best > 0 {
			fmt.Fprintf(w, "speedup (%s vs %s): %.2fx\n",
				rows[len(rows)-1].Config, rows[0].Config, float64(base)/float64(best))
		}
	}
}

// RunTezComparison (extension E7, paper §9) runs TPC-DS q95 fully optimized
// on the MapReduce engine and on the Tez-style DAG engine: same job DAG,
// but one launch and in-memory intermediate edges.
func RunTezComparison(cfg EnvConfig) ([]Fig11Row, error) {
	opt := optimizer.AllOn()
	opt.MapJoinThreshold = fig11MapJoinThreshold
	var out []Fig11Row
	for _, tez := range []bool{false, true} {
		envCfg := cfg
		envCfg.Opt = opt
		envCfg.Tez = tez
		env, _, err := NewEnv(envCfg, TPCDSTables())
		if err != nil {
			return nil, err
		}
		res, err := env.Run(workload.TPCDSQ95())
		if err != nil {
			return nil, err
		}
		name := "MapReduce"
		if tez {
			name = "Tez"
		}
		row := Fig11Row{
			Query:   "q95",
			Config:  name,
			Jobs:    res.Stats.Jobs,
			Elapsed: res.Stats.Elapsed,
			Rows:    len(res.Rows),
		}
		if len(res.Rows) > 0 {
			row.FirstRow = fmt.Sprint(res.Rows[0])
		}
		out = append(out, row)
	}
	return out, nil
}
