// faults.go drives the fault-injection experiment (E10, beyond the
// paper's figures; §2.1's execution-layer premise): SS-DB query 1 and
// TPC-H query 6 run on all three engine modes under a seeded fault policy
// — task crashes, transient datanode read errors, a corrupt block,
// straggler delays, cache lookup faults — and must return exactly the
// clean-run results, with the retry/speculation/waste accounting showing
// what the fault tolerance cost.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/faultinject"
)

// DefaultFaultConfig is the experiment's seeded policy: a heavy-handed
// failure rate (well past the issue's 10% floor) so every engine visibly
// retries, plus read faults, stragglers and cache faults to exercise every
// injection point.
func DefaultFaultConfig(seed int64) faultinject.Config {
	return faultinject.Config{
		Seed:           seed,
		TaskFailProb:   0.30,
		ReadFaultProb:  0.25,
		StragglerProb:  0.15,
		StragglerDelay: 5 * time.Millisecond,
		CacheFaultProb: 0.10,
	}
}

// FaultsRow is one (engine, query) run under injected faults.
type FaultsRow struct {
	Engine  string
	Query   string
	Elapsed time.Duration
	// Engine-side fault tolerance accounting.
	Failed      int64
	Retried     int64
	Speculative int64
	WastedCPU   time.Duration
	Backoff     time.Duration
	// Match reports whether the faulty run returned the clean run's rows.
	Match bool
}

// FaultsReport bundles the experiment's outputs.
type FaultsReport struct {
	Seed int64
	Rows []FaultsRow
	// Injection totals across all faulty runs.
	Injected faultinject.Snapshot
	// CorruptReads counts checksum failures detected (and failed over) by
	// the DFS — one corrupt block is planted per faulty environment.
	CorruptReads int64
	// Consistent is true when every faulty run matched its clean run.
	Consistent bool
	Mismatches []string
}

// faultsEnvCfg normalizes like llapEnvCfg and caps RowsPerFile so each
// table spans several files — several map tasks — giving the per-task
// fault coin enough flips to land failures.
func faultsEnvCfg(cfg EnvConfig) EnvConfig {
	out := llapEnvCfg(cfg)
	if out.RowsPerFile > 4000 {
		out.RowsPerFile = 4000
	}
	return out
}

// RunFaults runs the fault matrix: each query on each engine mode, clean
// versus faulted with the given seeded policy plus one corrupt DFS block.
// Per-identity fault decisions are pure functions of fcfg.Seed; the
// injection *totals* are additionally run-to-run identical when
// StragglerProb is zero (with speculation on, whether a losing attempt's
// coin was consulted before cancellation depends on who won the race).
func RunFaults(cfg EnvConfig, fcfg faultinject.Config) (*FaultsReport, error) {
	base := faultsEnvCfg(cfg)
	rep := &FaultsReport{Seed: fcfg.Seed, Consistent: true}

	modes := []struct {
		name string
		set  func(*EnvConfig)
	}{
		{"mapreduce", func(c *EnvConfig) {}},
		{"tez", func(c *EnvConfig) { c.Tez = true }},
		{"llap", func(c *EnvConfig) { c.LLAP = true }},
	}
	for _, q := range llapQueries(base) {
		for _, mode := range modes {
			cleanCfg := base
			mode.set(&cleanCfg)
			cleanEnv, _, err := NewEnv(cleanCfg, q.tables)
			if err != nil {
				return nil, err
			}
			cleanRes, err := cleanEnv.Run(q.sql)
			if err != nil {
				return nil, fmt.Errorf("bench: clean %s/%s: %w", mode.name, q.name, err)
			}
			want := flattenRows(cleanRes)
			cleanEnv.Driver.Close()

			faultyCfg := cleanCfg
			faultyCfg.Faults = fcfg
			env, _, err := NewEnv(faultyCfg, q.tables)
			if err != nil {
				return nil, err
			}
			// One corrupt replica on top of the seeded faults: block 0 of the
			// first table file. The read path must detect it by checksum and
			// fail over, not return bad data.
			meta, err := env.Driver.Metastore().Table(q.tables[0].Name)
			if err != nil {
				return nil, err
			}
			files := env.Driver.FS().List(meta.Path)
			if len(files) == 0 {
				return nil, fmt.Errorf("bench: table %s has no files", q.tables[0].Name)
			}
			if err := env.Driver.FS().CorruptBlock(files[0].Name, 0); err != nil {
				return nil, err
			}
			res, err := env.Run(q.sql)
			if err != nil {
				return nil, fmt.Errorf("bench: faulty %s/%s: %w", mode.name, q.name, err)
			}
			row := FaultsRow{
				Engine:      mode.name,
				Query:       q.name,
				Elapsed:     res.Stats.Elapsed,
				Failed:      res.Stats.FailedTasks,
				Retried:     res.Stats.RetriedTasks,
				Speculative: res.Stats.SpeculativeTasks,
				WastedCPU:   res.Stats.WastedCPU,
				Backoff:     res.Stats.RetryBackoff,
				Match:       true,
			}
			if msg := compareResults(want, flattenRows(res)); msg != "" {
				row.Match = false
				rep.Consistent = false
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s/%s: %s", mode.name, q.name, msg))
			}
			snap := env.Faults.Snapshot()
			rep.Injected.TaskFailures += snap.TaskFailures
			rep.Injected.ReadFaults += snap.ReadFaults
			rep.Injected.Stragglers += snap.Stragglers
			rep.Injected.CacheFaults += snap.CacheFaults
			rep.CorruptReads += env.Driver.FS().Stats().Snapshot().CorruptReads
			rep.Rows = append(rep.Rows, row)
			env.Driver.Close()
		}
	}
	return rep, nil
}

// PrintFaults renders the experiment.
func PrintFaults(w io.Writer, rep *FaultsReport) {
	fmt.Fprintf(w, "E10: fault-tolerant execution (seed %d; task crashes, read faults, 1 corrupt block/run, stragglers, cache faults)\n", rep.Seed)
	fmt.Fprintf(w, "%-10s %-10s %12s %7s %8s %6s %12s %12s %6s\n",
		"engine", "query", "elapsed(ms)", "failed", "retried", "spec", "wasted(ms)", "backoff(ms)", "match")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-10s %-10s %12d %7d %8d %6d %12d %12d %6v\n",
			r.Engine, r.Query, r.Elapsed.Milliseconds(), r.Failed, r.Retried,
			r.Speculative, r.WastedCPU.Milliseconds(), r.Backoff.Milliseconds(), r.Match)
	}
	fmt.Fprintf(w, "injected: %d task failures, %d read faults, %d stragglers, %d cache faults; %d corrupt reads detected\n",
		rep.Injected.TaskFailures, rep.Injected.ReadFaults, rep.Injected.Stragglers,
		rep.Injected.CacheFaults, rep.CorruptReads)
	if rep.Consistent {
		fmt.Fprintln(w, "All faulted runs returned the clean-run results on every engine.")
	} else {
		fmt.Fprintln(w, "RESULT MISMATCHES:")
		for _, m := range rep.Mismatches {
			fmt.Fprintln(w, "  "+m)
		}
	}
}
