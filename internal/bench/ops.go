// ops.go drives E17, the observability-overhead experiment (S26): the E14
// mixed interactive+batch workload at one client level, run twice on
// identical fresh warehouses — once with the query-history plane disabled
// (baseline) and once fully observed: history recording with default
// sampling and slow-query capture, plus a live Prometheus scraper hitting
// the HTTP admin plane's /metrics and /debug/queries over real loopback
// TCP every scrape interval for the whole run. The claim under test:
// watching the system costs under a couple percent of throughput, and the
// watched run's answers stay byte-identical to the serial reference.
package bench

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fileformat"
	"repro/internal/optimizer"
	"repro/internal/server"
	"repro/internal/sysdb"
	"repro/internal/workload"
)

// OpsReport is E17's outcome: the two arms plus what the observed arm's
// observability plane saw and served.
type OpsReport struct {
	Clients  int
	Baseline ConcurrencyRow // history disabled, no scraper
	Observed ConcurrencyRow // history + sampling + capture + live scraper
	// OverheadPct is the throughput cost of observation in percent;
	// negative means the observed run was (noise) faster.
	OverheadPct float64

	// What the history recorded during the observed arm.
	Recorded, Sampled, Captured int64
	// What the scraper saw: successful scrape rounds, failures, and the
	// size of the last /metrics exposition.
	Scrapes, ScrapeErrors int64
	MetricsBytes          int
	// TraceServed reports that a captured query's Chrome trace came back
	// over HTTP with trace events in it.
	TraceServed bool
}

// opsScrapeEvery is the scraper's polling interval — aggressive for a
// run measured in seconds (a production Prometheus scrapes in tens of
// seconds), so the measured overhead is an upper bound.
const opsScrapeEvery = 50 * time.Millisecond

// opsReps is how many measured runs each arm pools (best throughput wins);
// one run's throughput is too noisy to support a percent-level claim.
const opsReps = 3

// opsEnvConfig is the E14 environment recipe (ORC, all optimizations,
// LLAP, batch-heavy lineitem) with the history plane set per arm.
func opsEnvConfig(cfg EnvConfig, hist sysdb.Config) (EnvConfig, int) {
	ecfg := cfg
	ecfg.Format = fileformat.ORC
	ecfg.Opt = optimizer.AllOn()
	ecfg.LLAP = true
	ecfg.History = hist
	ecfg.Scale.Lineitem *= 8
	grid := cfg.Scale.SSDBGrid
	if ecfg.ORCStride == 0 || ecfg.ORCStride > grid/2 {
		ecfg.ORCStride = maxInt(grid/2, 16)
	}
	return ecfg, grid
}

// RunOps loads two identical warehouses and measures the E14 workload at
// `clients` clients with the observability plane off, then on + scraped.
func RunOps(cfg EnvConfig, clients, perClient int) (*OpsReport, error) {
	rep := &OpsReport{Clients: clients}

	base, err := runOpsArm(cfg, clients, perClient, sysdb.Config{Disabled: true}, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: ops baseline arm: %w", err)
	}
	rep.Baseline = base

	obs, err := runOpsArm(cfg, clients, perClient, sysdb.Config{}, rep)
	if err != nil {
		return nil, fmt.Errorf("bench: ops observed arm: %w", err)
	}
	rep.Observed = obs

	if rep.Baseline.Throughput > 0 {
		rep.OverheadPct = 100 * (rep.Baseline.Throughput - rep.Observed.Throughput) / rep.Baseline.Throughput
	}
	return rep, nil
}

// runOpsArm builds one fresh warehouse and runs the level twice — a warmup
// (fills the LLAP cache, steadies the daemon pool) and the measured run.
// When rep is non-nil this is the observed arm: the admin plane listens on
// real loopback TCP, a scraper polls it throughout, and rep collects what
// the plane recorded and served.
func runOpsArm(cfg EnvConfig, clients, perClient int, hist sysdb.Config, rep *OpsReport) (ConcurrencyRow, error) {
	ecfg, grid := opsEnvConfig(cfg, hist)
	tables := append(SSDBTables(), TableSpec{
		Name: "lineitem", Schema: workload.LineitemSchema(), Gen: workload.GenLineitem,
	})
	env, _, err := NewEnv(ecfg, tables)
	if err != nil {
		return ConcurrencyRow{}, err
	}
	defer env.Driver.Close()
	d := env.Driver

	interQ := workload.SSDBQuery1(grid / 2)
	batchQ := opsBatchQuery
	refInter, err := serialReference(d, interQ)
	if err != nil {
		return ConcurrencyRow{}, err
	}
	refBatch, err := serialReference(d, batchQ)
	if err != nil {
		return ConcurrencyRow{}, err
	}

	var onServer func(*server.Server)
	var stopScraper func()
	if rep != nil {
		// One listener outlives both the warmup and measured servers; the
		// handler behind it swaps as each level builds its server.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ConcurrencyRow{}, err
		}
		defer ln.Close()
		var handler atomic.Pointer[http.Handler]
		go http.Serve(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := handler.Load(); h != nil {
				(*h).ServeHTTP(w, r)
			} else {
				http.Error(w, "no server yet", http.StatusServiceUnavailable)
			}
		}))
		onServer = func(srv *server.Server) {
			h := srv.Handler()
			handler.Store(&h)
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		stopScraper = func() { close(stop); <-done }
		go func() {
			defer close(done)
			base := "http://" + ln.Addr().String()
			// Generous timeout: on a saturated box the scrape round-trip
			// competes with the query workload for cores, and a timed-out
			// scrape would misreport plane slowness as plane failure.
			client := &http.Client{Timeout: 30 * time.Second}
			tick := time.NewTicker(opsScrapeEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				n, err := opsGet(client, base+"/metrics")
				if err == nil {
					rep.MetricsBytes = n
					_, err = opsGet(client, base+"/debug/queries")
				}
				if err != nil {
					rep.ScrapeErrors++
				} else {
					rep.Scrapes++
				}
			}
		}()
	}

	// One warmup (fills the LLAP cache, steadies the daemon pool), then
	// best-of-opsReps measured runs: per-run throughput is noisy on a
	// loaded box, and the best run is the one least polluted by scheduler
	// interference — the fair basis for an overhead comparison.
	var row ConcurrencyRow
	for r := 0; r <= opsReps; r++ {
		got, _, err := runConcurrencyLevel(d, clients, perClient, true, interQ, batchQ, refInter, refBatch, onServer)
		if err != nil {
			if stopScraper != nil {
				stopScraper()
			}
			return ConcurrencyRow{}, err
		}
		if r == 0 {
			continue // warmup
		}
		if !got.Consistent || got.Errors > 0 {
			row = got // correctness failure trumps throughput; report it
			break
		}
		if got.Throughput > row.Throughput {
			row = got
		}
	}
	if stopScraper != nil {
		stopScraper()
	}

	if rep != nil {
		h := d.History()
		st := h.Stats()
		rep.Recorded = st.Recorded.Load()
		rep.Sampled = st.Sampled.Load()
		rep.Captured = st.Captured.Load()
		// Pull one captured query's Chrome trace back through the plane —
		// the slow-query post-mortem path, end to end over HTTP.
		if caps := h.Captures(); len(caps) > 0 {
			var sb strings.Builder
			if cap, ok := h.Capture(caps[len(caps)-1]); ok && cap.Tracer.WriteJSON(&sb) == nil {
				rep.TraceServed = strings.Contains(sb.String(), "traceEvents")
			}
		}
	}
	return row, nil
}

// opsBatchQuery is E14's integer-aggregate batch query (double sums would
// merge partials in nondeterministic order and break the byte-identical
// check).
const opsBatchQuery = `SELECT l_returnflag, l_linestatus,
  count(*) AS count_order,
  sum(l_quantity) AS sum_qty,
  sum(l_orderkey) AS sum_key,
  min(l_shipdate) AS min_ship,
  max(l_receiptdate) AS max_rcpt
FROM lineitem
WHERE l_shipdate <= 10471
GROUP BY l_returnflag, l_linestatus`

func opsGet(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return len(b), nil
}

// PrintOps renders the E17 table.
func PrintOps(w io.Writer, rep *OpsReport) {
	fmt.Fprintf(w, "E17: observability overhead (E14 workload at %d clients; scraper polls\n", rep.Clients)
	fmt.Fprintf(w, "     /metrics + /debug/queries over loopback HTTP every %s)\n", opsScrapeEvery)
	fmt.Fprintf(w, "%-10s %8s %9s %12s %12s %6s\n", "arm", "queries", "q/s", "inter p95", "batch p95", "ok")
	for _, arm := range []struct {
		name string
		row  ConcurrencyRow
	}{{"baseline", rep.Baseline}, {"observed", rep.Observed}} {
		ok := "yes"
		if !arm.row.Consistent || arm.row.Errors > 0 {
			ok = "NO"
		}
		fmt.Fprintf(w, "%-10s %8d %9.1f %12s %12s %6s\n",
			arm.name, arm.row.Queries, arm.row.Throughput,
			arm.row.InterP95.Round(time.Microsecond), arm.row.BatchP95.Round(time.Microsecond), ok)
	}
	fmt.Fprintf(w, "overhead: %.2f%% of baseline throughput\n", rep.OverheadPct)
	fmt.Fprintf(w, "observed arm: %d recorded (%d sampled, %d captured); %d scrapes (%d errors), last /metrics %d bytes; trace served: %v\n",
		rep.Recorded, rep.Sampled, rep.Captured, rep.Scrapes, rep.ScrapeErrors, rep.MetricsBytes, rep.TraceServed)
}
