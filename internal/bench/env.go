// Package bench implements the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§7), shared by
// cmd/benchrunner and the testing.B benchmarks in bench_test.go. Absolute
// numbers differ from the paper's 11-node cluster (DESIGN.md §4); the
// harness reports the same rows/series so shapes can be compared.
package bench

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/faultinject"
	"repro/internal/fileformat"
	"repro/internal/llap"
	"repro/internal/mapred"
	"repro/internal/optimizer"
	"repro/internal/orc"
	"repro/internal/sysdb"
	"repro/internal/types"
	"repro/internal/workload"
)

// TableSpec names one generated table.
type TableSpec struct {
	Name   string
	Schema *types.Schema
	Gen    func(workload.Scale, workload.Emit) error
}

// SSDBTables returns the SS-DB dataset tables.
func SSDBTables() []TableSpec {
	return []TableSpec{
		{"cycle", workload.SSDBSchema(), workload.GenSSDB},
	}
}

// TPCHTables returns the TPC-H dataset tables.
func TPCHTables() []TableSpec {
	return []TableSpec{
		{"lineitem", workload.LineitemSchema(), workload.GenLineitem},
		{"orders", workload.OrdersSchema(), workload.GenOrders},
		{"customer", workload.CustomerSchema(), workload.GenCustomer},
	}
}

// TPCDSTables returns the TPC-DS dataset tables.
func TPCDSTables() []TableSpec {
	return []TableSpec{
		{"store_sales", workload.StoreSalesSchema(), workload.GenStoreSales},
		{"customer_demographics", workload.CustomerDemographicsSchema(), workload.GenCustomerDemographics},
		{"date_dim", workload.DateDimSchema(), workload.GenDateDim},
		{"store", workload.StoreSchema(), workload.GenStore},
		{"item", workload.ItemSchema(), workload.GenItem},
		{"web_sales", workload.WebSalesSchema(), workload.GenWebSales},
		{"web_returns", workload.WebReturnsSchema(), workload.GenWebReturns},
		{"customer_address", workload.CustomerAddressSchema(), workload.GenCustomerAddress},
	}
}

// Datasets maps the paper's three benchmark names to their tables.
func Datasets() map[string][]TableSpec {
	return map[string][]TableSpec{
		"SS-DB":  SSDBTables(),
		"TPC-H":  TPCHTables(),
		"TPC-DS": TPCDSTables(),
	}
}

// Env is one warehouse: a DFS, an engine and a driver with loaded tables.
type Env struct {
	Driver *core.Driver
	Scale  workload.Scale
	Format fileformat.Kind
	// Faults is the live fault policy, nil when injection is off.
	Faults *faultinject.Policy
}

// EnvConfig controls dataset loading.
type EnvConfig struct {
	Scale       workload.Scale
	Format      fileformat.Kind
	Compression compress.Kind
	// ORCStride overrides the ORC row-index stride (scaled-down datasets
	// need proportionally smaller index groups).
	ORCStride int
	// ORCStripeSize overrides the ORC stripe size.
	ORCStripeSize int64
	// RowsPerFile splits tables into multiple DFS files (map tasks).
	RowsPerFile int
	Opt         optimizer.Options
	// LaunchOverhead is the accounted per-job startup cost; the paper's
	// Hadoop pays tens of seconds per job, scaled down here.
	LaunchOverhead time.Duration
	// DiskBandwidth is the simulated DFS bandwidth in bytes/second
	// (default 64 MB/s, in the range of the paper's m1.xlarge disks);
	// <0 disables I/O simulation.
	DiskBandwidth int64
	// SeekLatency is the simulated per-read-op cost (default 2ms).
	SeekLatency time.Duration
	// Tez runs queries on the Tez-style DAG engine (§9 extension, E7).
	Tez bool
	// LLAP runs queries on the LLAP-style daemon mode (§9 outlook, E9):
	// Tez-style edges plus persistent executors and a shared in-memory
	// columnar cache. Takes precedence over Tez.
	LLAP bool
	// LLAPCacheBytes overrides the chunk-cache byte budget (default 64 MiB).
	LLAPCacheBytes int64
	// Faults, when non-zero, wires a seeded fault-injection policy through
	// every layer: task crashes and stragglers into the engine (which then
	// runs with retries, accounted backoff and — when stragglers are on —
	// speculative execution), datanode read faults into the DFS, lookup
	// faults into the LLAP chunk cache (E10).
	Faults faultinject.Config
	// History configures the driver's query history (S26); the zero value
	// records with default sampling, Disabled turns the plane off (E17's
	// baseline arm).
	History sysdb.Config
}

func (c *EnvConfig) withDefaults() EnvConfig {
	out := *c
	if out.ORCStride == 0 {
		out.ORCStride = 1024
	}
	if out.ORCStripeSize == 0 {
		out.ORCStripeSize = 4 << 20
	}
	if out.RowsPerFile == 0 {
		out.RowsPerFile = 1 << 30
	}
	if out.DiskBandwidth == 0 {
		out.DiskBandwidth = 64 << 20
	}
	if out.DiskBandwidth < 0 {
		out.DiskBandwidth = 0
	}
	if out.SeekLatency == 0 {
		out.SeekLatency = 2 * time.Millisecond
	}
	return out
}

// NewEnv builds a fresh warehouse and loads the given tables; it returns
// the environment and the per-table load durations (Figure 9's metric).
func NewEnv(cfg EnvConfig, tables []TableSpec) (*Env, map[string]time.Duration, error) {
	c := cfg.withDefaults()
	fs := dfs.New(dfs.WithBlockSize(8<<20), dfs.WithSimulatedDisk(c.DiskBandwidth, c.SeekLatency))
	ecfg := mapred.Config{Slots: 4, JobLaunchOverhead: c.LaunchOverhead}
	var policy *faultinject.Policy
	if c.Faults != (faultinject.Config{}) {
		policy = faultinject.New(c.Faults)
		fs.SetFaultPolicy(policy)
		ecfg.Faults = policy
		ecfg.MaxAttempts = 4
		ecfg.RetryBackoff = 10 * time.Millisecond
		if c.Faults.StragglerProb > 0 {
			ecfg.SpeculativeSlowdown = 2
		}
	}
	engine := mapred.NewEngine(ecfg)
	conf := core.Config{Opt: c.Opt, History: c.History}
	switch {
	case c.LLAP:
		conf.Engine = core.ModeLLAP
		conf.LLAP = llap.Config{CacheBytes: c.LLAPCacheBytes}
		if policy != nil {
			conf.LLAP.CacheFaultHook = func(k orc.ChunkKey) bool {
				return policy.CacheFault(fmt.Sprintf("%s#%d#%d#%d", k.Path, k.Stripe, k.Column, k.Stream))
			}
		}
	case c.Tez:
		conf.Engine = core.ModeTez
	}
	d := core.NewDriver(fs, engine, conf)
	loadTimes := map[string]time.Duration{}
	for _, spec := range tables {
		opts := &fileformat.Options{Compression: c.Compression}
		if c.Format == fileformat.ORC {
			opts.ORCOptions = &orc.WriterOptions{
				RowIndexStride: c.ORCStride,
				StripeSize:     c.ORCStripeSize,
				Compression:    c.Compression,
			}
		}
		loader, err := d.CreateTable(spec.Name, spec.Schema, c.Format, opts)
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		n := 0
		err = spec.Gen(c.Scale, func(row types.Row) error {
			n++
			if n%c.RowsPerFile == 0 {
				if err := loader.NextFile(); err != nil {
					return err
				}
			}
			return loader.Write(row)
		})
		if err != nil {
			return nil, nil, err
		}
		if err := loader.Close(); err != nil {
			return nil, nil, err
		}
		loadTimes[spec.Name] = time.Since(start)
	}
	return &Env{Driver: d, Scale: c.Scale, Format: c.Format, Faults: policy}, loadTimes, nil
}

// TableBytes sums a dataset's on-DFS size (Table 2's metric).
func (e *Env) TableBytes() int64 {
	var total int64
	for _, name := range e.Driver.Metastore().Names() {
		meta, err := e.Driver.Metastore().Table(name)
		if err != nil {
			continue
		}
		total += e.Driver.FS().TotalSize(meta.Path)
	}
	return total
}

// Run executes a query and returns the result.
func (e *Env) Run(q string) (*core.Result, error) { return e.Driver.Run(q) }

// MustRun fails loudly; the harness treats query failure as a bug.
func (e *Env) MustRun(q string) *core.Result {
	res, err := e.Driver.Run(q)
	if err != nil {
		panic(fmt.Sprintf("bench: query failed: %v\nquery: %s", err, q))
	}
	return res
}
