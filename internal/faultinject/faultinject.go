// Package faultinject is a seeded, deterministic fault policy for the
// execution stack: it decides which task attempts crash, which DFS block
// reads fail, which nodes straggle and which cache lookups error. Every
// decision is a pure function of the seed and the fault's identity (job,
// task, attempt, file, block, ...), never of goroutine scheduling, so a
// fault run is reproducible: the same seed injects the same faults no
// matter how the runtime interleaves tasks. (The engine consults the
// policy with failure ordinals and skips speculative duplicates, keeping
// the identity set schedule-independent too; only under speculation can a
// cancelled loser skip its coin, making totals vary by a few.) That is
// what lets the fault matrix assert byte-identical results and lets
// `benchrunner -exp faults` print stable numbers.
//
// The one piece of mutable state is the read-fault fire counter: an
// injected datanode read error is transient (a momentary outage, not a
// lost disk), firing a bounded number of times per block before the
// "datanode" heals — otherwise a retried task would re-fail on the same
// block forever and retry could never succeed.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config selects fault classes and rates. The zero value injects nothing.
type Config struct {
	// Seed drives every decision; two policies with the same Seed and the
	// same Config inject exactly the same faults.
	Seed int64
	// TaskFailProb is the per-attempt probability that a task attempt
	// crashes after doing its work (exercising the output-commit protocol:
	// the attempt's output must be discarded, not half-committed).
	TaskFailProb float64
	// MaxFailuresPerTask caps injected failures per task so a retrying
	// engine always has a surviving attempt. Default 2.
	MaxFailuresPerTask int
	// ReadFaultProb is the per-block probability that reads of a DFS block
	// fail with an injected datanode error.
	ReadFaultProb float64
	// ReadFaultRepeat is how many reads of a faulty block fail before the
	// datanode "heals" (a transient outage, not a lost disk). Default 1.
	ReadFaultRepeat int
	// StragglerProb is the per-task probability that the first attempt
	// lands on a slow node and sleeps StragglerDelay before running —
	// the raw material for speculative execution.
	StragglerProb float64
	// StragglerDelay is the real (slept) delay of a straggling attempt.
	// Default 20ms.
	StragglerDelay time.Duration
	// CacheFaultProb is the per-lookup probability that a cache read
	// errors; the cache layer must degrade to a miss (direct DFS read),
	// never fail the query.
	CacheFaultProb float64
}

func (c Config) withDefaults() Config {
	if c.MaxFailuresPerTask == 0 {
		c.MaxFailuresPerTask = 2
	}
	if c.ReadFaultRepeat == 0 {
		c.ReadFaultRepeat = 1
	}
	if c.StragglerDelay == 0 {
		c.StragglerDelay = 20 * time.Millisecond
	}
	return c
}

// Stats counts injected faults; all fields are cumulative.
type Stats struct {
	TaskFailures atomic.Int64
	ReadFaults   atomic.Int64
	Stragglers   atomic.Int64
	CacheFaults  atomic.Int64
}

// Snapshot is an immutable copy of Stats.
type Snapshot struct {
	TaskFailures int64
	ReadFaults   int64
	Stragglers   int64
	CacheFaults  int64
}

// Policy is a live fault injector. It is safe for concurrent use.
type Policy struct {
	cfg   Config
	stats Stats

	mu        sync.Mutex
	readFired map[string]int // (file#block) → times the fault already fired
}

// New creates a policy from a config (zero-valued fields take defaults).
func New(cfg Config) *Policy {
	return &Policy{cfg: cfg.withDefaults(), readFired: map[string]int{}}
}

// Config returns the effective (default-filled) configuration.
func (p *Policy) Config() Config { return p.cfg }

// Snapshot copies the injection counters.
func (p *Policy) Snapshot() Snapshot {
	return Snapshot{
		TaskFailures: p.stats.TaskFailures.Load(),
		ReadFaults:   p.stats.ReadFaults.Load(),
		Stragglers:   p.stats.Stragglers.Load(),
		CacheFaults:  p.stats.CacheFaults.Load(),
	}
}

// chance is the deterministic coin flip: an FNV-64 hash of the seed and
// the fault identity mapped to [0,1) and compared against prob.
func (p *Policy) chance(prob float64, parts ...string) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", p.cfg.Seed)
	for _, s := range parts {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	// FNV avalanches poorly on short suffix changes (".../part-00001" vs
	// ".../part-00002" land close together), which would correlate the
	// coins of neighboring files and tasks; a splitmix64 finalizer
	// decorrelates them. 53 bits → uniform float64 in [0,1).
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return u < prob
}

func itoa(n int) string { return strconv.Itoa(n) }

// TaskError implements the mapred fault hook: it decides whether this
// attempt of this task crashes (after its work ran, before commit). Only
// the first MaxFailuresPerTask attempts can fail, so attempt numbers at
// or beyond the cap always succeed and retry converges.
func (p *Policy) TaskError(job string, task, attempt, node int) error {
	if attempt >= p.cfg.MaxFailuresPerTask {
		return nil
	}
	if !p.chance(p.cfg.TaskFailProb, "task", job, itoa(task), itoa(attempt)) {
		return nil
	}
	p.stats.TaskFailures.Add(1)
	return fmt.Errorf("faultinject: task %s/%d attempt %d crashed on node %d", job, task, attempt, node)
}

// TaskDelay implements the mapred straggler hook: first attempts of
// selected tasks sleep StragglerDelay, simulating a slow node. Retries and
// speculative duplicates run at full speed (they land elsewhere), so a
// speculating engine can beat the straggler.
func (p *Policy) TaskDelay(job string, task, attempt, node int) time.Duration {
	if attempt != 0 || !p.chance(p.cfg.StragglerProb, "straggle", job, itoa(task)) {
		return 0
	}
	p.stats.Stragglers.Add(1)
	return p.cfg.StragglerDelay
}

// ReadFault implements the dfs fault hook: whether a read touching this
// block fails with an injected datanode error. Which blocks are faulty is
// seed-deterministic; each faulty block fails ReadFaultRepeat reads and
// then heals.
func (p *Policy) ReadFault(file string, block int64, node int) bool {
	if !p.chance(p.cfg.ReadFaultProb, "read", file, strconv.FormatInt(block, 10)) {
		return false
	}
	key := file + "#" + strconv.FormatInt(block, 10)
	p.mu.Lock()
	if p.readFired[key] >= p.cfg.ReadFaultRepeat {
		p.mu.Unlock()
		return false
	}
	p.readFired[key]++
	p.mu.Unlock()
	p.stats.ReadFaults.Add(1)
	return true
}

// CacheFault implements the llap cache fault hook: whether this lookup
// errors. The cache must treat a faulted lookup as a miss and fall back to
// the DFS; keys are opaque identity strings.
func (p *Policy) CacheFault(key string) bool {
	if !p.chance(p.cfg.CacheFaultProb, "cache", key) {
		return false
	}
	p.stats.CacheFaults.Add(1)
	return true
}
