package faultinject

import (
	"testing"
	"time"
)

// TestDeterminism: two policies with the same seed make identical
// decisions; a different seed makes (some) different ones.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, TaskFailProb: 0.3, ReadFaultProb: 0.3, StragglerProb: 0.3}
	a, b := New(cfg), New(cfg)
	diffSeed := New(Config{Seed: 43, TaskFailProb: 0.3, ReadFaultProb: 0.3, StragglerProb: 0.3})
	divergence := false
	for task := 0; task < 100; task++ {
		for attempt := 0; attempt < 3; attempt++ {
			ea := a.TaskError("job", task, attempt, 0)
			eb := b.TaskError("job", task, attempt, 0)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("same seed diverged at task %d attempt %d", task, attempt)
			}
			if (ea == nil) != (diffSeed.TaskError("job", task, attempt, 0) == nil) {
				divergence = true
			}
			da := a.TaskDelay("job", task, attempt, 0)
			if db := b.TaskDelay("job", task, attempt, 0); da != db {
				t.Fatalf("straggler decision diverged at task %d", task)
			}
		}
	}
	if !divergence {
		t.Error("seeds 42 and 43 injected identical task faults over 300 attempts")
	}
}

// TestTaskFailureCap: attempts at or beyond MaxFailuresPerTask never fail,
// so a retrying engine always converges.
func TestTaskFailureCap(t *testing.T) {
	p := New(Config{Seed: 1, TaskFailProb: 1.0, MaxFailuresPerTask: 2})
	for task := 0; task < 20; task++ {
		if p.TaskError("j", task, 0, 0) == nil || p.TaskError("j", task, 1, 0) == nil {
			t.Fatalf("task %d: prob 1.0 attempt under cap did not fail", task)
		}
		if err := p.TaskError("j", task, 2, 0); err != nil {
			t.Fatalf("task %d attempt 2 failed beyond cap: %v", task, err)
		}
	}
	if got := p.Snapshot().TaskFailures; got != 40 {
		t.Errorf("TaskFailures = %d, want 40", got)
	}
}

// TestReadFaultHeals: a faulty block fails exactly ReadFaultRepeat reads,
// then heals; retries therefore succeed.
func TestReadFaultHeals(t *testing.T) {
	p := New(Config{Seed: 7, ReadFaultProb: 1.0, ReadFaultRepeat: 2})
	if !p.ReadFault("/f", 3, 0) || !p.ReadFault("/f", 3, 1) {
		t.Fatal("faulty block did not fail its first two reads")
	}
	if p.ReadFault("/f", 3, 0) {
		t.Fatal("block did not heal after ReadFaultRepeat fires")
	}
	// Other blocks fire independently.
	if !p.ReadFault("/f", 4, 0) {
		t.Fatal("block 4 should fault at prob 1.0")
	}
	if got := p.Snapshot().ReadFaults; got != 3 {
		t.Errorf("ReadFaults = %d, want 3", got)
	}
}

// TestRates: injection frequency tracks the configured probability.
func TestRates(t *testing.T) {
	p := New(Config{Seed: 99, TaskFailProb: 0.25, MaxFailuresPerTask: 1})
	n := 0
	const total = 2000
	for task := 0; task < total; task++ {
		if p.TaskError("j", task, 0, 0) != nil {
			n++
		}
	}
	frac := float64(n) / total
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("injected fraction %.3f far from configured 0.25", frac)
	}
}

// TestZeroConfigInjectsNothing: the zero config is a no-op policy.
func TestZeroConfigInjectsNothing(t *testing.T) {
	p := New(Config{Seed: 5})
	for task := 0; task < 50; task++ {
		if p.TaskError("j", task, 0, 0) != nil || p.TaskDelay("j", task, 0, 0) != 0 ||
			p.ReadFault("/f", int64(task), 0) || p.CacheFault("k") {
			t.Fatal("zero config injected a fault")
		}
	}
}

// TestStragglerOnlyFirstAttempt: retries and speculative duplicates never
// straggle, so they can beat the slow original.
func TestStragglerOnlyFirstAttempt(t *testing.T) {
	p := New(Config{Seed: 3, StragglerProb: 1.0, StragglerDelay: 5 * time.Millisecond})
	if p.TaskDelay("j", 0, 0, 1) != 5*time.Millisecond {
		t.Fatal("first attempt did not straggle at prob 1.0")
	}
	if p.TaskDelay("j", 0, 1, 2) != 0 {
		t.Fatal("retry attempt straggled")
	}
}
