package sysdb

import (
	"sort"
	"strings"

	"repro/internal/types"
)

// TableDef is one `sys.*` virtual table: a fixed schema plus a snapshot
// function producing its rows at scan time. Definitions are registered on
// the driver (builtins) or by subsystems that own the state (the server
// registers sys.pools and sys.sessions).
type TableDef struct {
	Name   string // fully qualified, e.g. "sys.queries"
	Schema *types.Schema
	Rows   func() []types.Row
}

// IsSysTable reports whether a table reference names the sys database.
func IsSysTable(name string) bool { return strings.HasPrefix(name, "sys.") }

func long() *types.Type { return types.Primitive(types.Long) }
func str() *types.Type  { return types.Primitive(types.String) }
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// QueriesTable exposes the history ring as sys.queries. Durations are in
// milliseconds (wall_ms etc.) so threshold predicates read naturally.
func (h *History) QueriesTable() TableDef {
	return TableDef{
		Name: "sys.queries",
		Schema: types.NewSchema(
			types.Col("qid", long()),
			types.Col("query", str()),
			types.Col("fingerprint", long()),
			types.Col("plan_hash", long()),
			types.Col("session", str()),
			types.Col("pool", str()),
			types.Col("tenant", str()),
			types.Col("engine", str()),
			types.Col("state", str()),
			types.Col("error", str()),
			types.Col("est_rows", long()),
			types.Col("actual_rows", long()),
			types.Col("queue_ms", long()),
			types.Col("wall_ms", long()),
			types.Col("total_ms", long()),
			types.Col("bytes_dfs", long()),
			types.Col("bytes_cache", long()),
			types.Col("bytes_total", long()),
			types.Col("shuffle_bytes", long()),
			types.Col("retries", long()),
			types.Col("failed_tasks", long()),
			types.Col("preemptions", long()),
			types.Col("sampled", long()),
			types.Col("traced", long()),
			types.Col("start_ms", long()),
		),
		Rows: func() []types.Row {
			recs := h.Records()
			rows := make([]types.Row, 0, len(recs))
			for _, r := range recs {
				rows = append(rows, types.Row{
					r.ID, r.Query, int64(r.Fingerprint), int64(r.PlanHash),
					r.Session, r.Pool, r.Tenant, r.Engine, r.State, r.Error,
					r.EstRows, r.ActualRows,
					r.QueueWait.Milliseconds(), r.Wall.Milliseconds(), r.Total.Milliseconds(),
					r.DFSBytes, r.CacheBytes, r.TotalBytes, r.Shuffle,
					r.Retries, r.FailedTasks, r.Preemptions,
					b2i(r.Sampled), b2i(r.Traced), r.Start.UnixMilli(),
				})
			}
			return rows
		},
	}
}

// LiveQueriesTable exposes in-flight queries as sys.live_queries.
func (h *History) LiveQueriesTable() TableDef {
	return TableDef{
		Name: "sys.live_queries",
		Schema: types.NewSchema(
			types.Col("qid", long()),
			types.Col("query", str()),
			types.Col("session", str()),
			types.Col("pool", str()),
			types.Col("engine", str()),
			types.Col("elapsed_ms", long()),
			types.Col("traced", long()),
		),
		Rows: func() []types.Row {
			live := h.Live()
			rows := make([]types.Row, 0, len(live))
			for _, q := range live {
				rows = append(rows, types.Row{
					q.ID, q.Query, q.Session, q.Pool, q.Engine,
					q.Elapsed.Milliseconds(), b2i(q.Traced),
				})
			}
			return rows
		},
	}
}

// SortDefs orders table definitions by name for stable listings.
func SortDefs(defs []TableDef) {
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
}
