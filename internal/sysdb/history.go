// Package sysdb is the operational observability plane (S26): a bounded
// in-memory ring of structured per-query records persisted as rotated
// JSONL segments on the DFS, a slow-query capture store that retains the
// full span trace and operator profile for queries over a configurable
// latency/bytes threshold (plus a sampled 1-in-N), and the `sys.*`
// virtual-table definitions that make all of it queryable through the
// ordinary SQL surface — the reproduction's answer to Hive's `sys`
// database and information_schema.
//
// The non-captured path is deliberately cheap: a query that is neither
// sampled nor a slow candidate allocates no tracer, no spans and no
// profile (the S21 nil path); finishing it copies one record into a
// preallocated ring slot and appends it to the pending JSONL batch.
package sysdb

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// Config sizes the history. The zero value enables everything with
// defaults; set Disabled to turn the whole plane off (benchmark
// baselines), or a threshold negative to disable just that trigger.
type Config struct {
	// Disabled turns query history off entirely: Begin returns nil and
	// every downstream call no-ops.
	Disabled bool
	// RingSize bounds the in-memory record ring (default 512).
	RingSize int
	// SampleEvery captures the trace of one query in N regardless of
	// speed (default 16; negative disables sampling).
	SampleEvery int
	// SlowWall retains a query's capture when its wall time reaches this
	// threshold (default 1s; negative disables).
	SlowWall time.Duration
	// SlowBytes marks a query a slow *candidate* — worth tracing — when
	// its estimated scan footprint reaches this many bytes, and retains
	// the capture when its actual TotalBytes does (default 32 MiB;
	// negative disables).
	SlowBytes int64
	// MaxCaptures bounds retained trace+profile captures, oldest evicted
	// first (default 32).
	MaxCaptures int
	// Dir is the DFS directory for JSONL history segments (default
	// "/sys/history").
	Dir string
	// FlushEvery is the records-per-segment rotation size (default 64).
	FlushEvery int
	// KeepSegments bounds on-DFS segments, oldest removed first
	// (default 8).
	KeepSegments int
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 512
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.SlowWall == 0 {
		c.SlowWall = time.Second
	}
	if c.SlowBytes == 0 {
		c.SlowBytes = 32 << 20
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 32
	}
	if c.Dir == "" {
		c.Dir = "/sys/history"
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 64
	}
	if c.KeepSegments <= 0 {
		c.KeepSegments = 8
	}
	return c
}

// QueryRecord is one finished query's structured history entry; the JSON
// shape is the JSONL persistence format.
type QueryRecord struct {
	ID          int64         `json:"qid"`
	Query       string        `json:"query"`
	Fingerprint uint64        `json:"fingerprint"` // literal-normalized query hash
	PlanHash    uint64        `json:"plan_hash"`   // hash of the optimized plan rendering
	Session     string        `json:"session,omitempty"`
	Pool        string        `json:"pool,omitempty"`
	Tenant      string        `json:"tenant,omitempty"`
	Engine      string        `json:"engine"`
	State       string        `json:"state"` // ok | failed | cancelled | preempted
	Error       string        `json:"error,omitempty"`
	EstRows     int64         `json:"est_rows"` // -1 when the optimizer produced no estimate
	ActualRows  int64         `json:"actual_rows"`
	QueueWait   time.Duration `json:"queue_ns"` // admission wait (server sessions)
	Wall        time.Duration `json:"wall_ns"`  // driver-side run wall
	Total       time.Duration `json:"total_ns"` // QueueWait + Wall
	DFSBytes    int64         `json:"bytes_dfs"`
	CacheBytes  int64         `json:"bytes_cache"`
	TotalBytes  int64         `json:"bytes_total"`
	Shuffle     int64         `json:"bytes_shuffle"`
	Retries     int64         `json:"retries"`
	FailedTasks int64         `json:"failed_tasks"`
	Preemptions int64         `json:"preemptions"` // absorbed before this attempt ran
	Sampled     bool          `json:"sampled"`
	Traced      bool          `json:"traced"` // capture retained; /debug/trace/<qid>
	Start       time.Time     `json:"start"`
}

// Outcome is what the driver knows when a query finishes; Finish folds it
// into the record.
type Outcome struct {
	Err                                            error
	Cancelled                                      bool   // the query's context was cancelled
	State                                          string // optional override (e.g. "preempted"); "" derives from Err
	ActualRows                                     int64
	DFSBytes, CacheBytes, TotalBytes, ShuffleBytes int64
	Retries, FailedTasks                           int64
	Wall                                           time.Duration
}

// Capture is a retained slow/sampled query's full observability state.
type Capture struct {
	ID      int64
	Query   string
	Wall    time.Duration
	Sampled bool // retained by the 1-in-N sampler rather than a threshold
	Tracer  *obs.Tracer
	Profile *obs.PlanProfile
}

// Stats counts the history's own work; registered in the driver registry
// under "sysdb.".
type Stats struct {
	Recorded    atomic.Int64
	Sampled     atomic.Int64
	Captured    atomic.Int64
	Flushes     atomic.Int64
	FlushErrors atomic.Int64
}

// History is the per-driver query history. Safe for concurrent use; a nil
// *History no-ops everywhere.
type History struct {
	cfg   Config
	fs    *dfs.FS
	stats Stats

	sampleTick atomic.Int64

	mu       sync.Mutex
	ring     []QueryRecord // preallocated; ring[next] is the oldest once wrapped
	next     int
	total    int64
	live     map[int64]*LiveQuery
	caps     map[int64]*Capture
	capOrder []int64 // insertion order, for MaxCaptures eviction
	pending  []QueryRecord
	segSeq   int64
	segments []string // written segment paths, oldest first
}

// New builds a history persisting JSONL segments through fs (nil fs keeps
// the history purely in memory). A Disabled config still returns a
// non-nil handle whose Begin returns nil.
func New(fs *dfs.FS, cfg Config) *History {
	cfg = cfg.withDefaults()
	h := &History{cfg: cfg, fs: fs}
	if !cfg.Disabled {
		h.ring = make([]QueryRecord, cfg.RingSize)
		h.live = map[int64]*LiveQuery{}
		h.caps = map[int64]*Capture{}
	}
	return h
}

// Enabled reports whether the history records anything.
func (h *History) Enabled() bool { return h != nil && !h.cfg.Disabled }

// Config returns the effective (default-filled) configuration.
func (h *History) Config() Config { return h.cfg }

// Stats exposes the history's own counters for registry adoption.
func (h *History) Stats() *Stats { return &h.stats }

// SampleNext consumes one sampling tick: true for the first query and
// every SampleEvery-th after it.
func (h *History) SampleNext() bool {
	if !h.Enabled() || h.cfg.SampleEvery < 0 {
		return false
	}
	return h.sampleTick.Add(1)%int64(h.cfg.SampleEvery) == 1 || h.cfg.SampleEvery == 1
}

// SlowCandidate reports whether a query with the given estimated scan
// footprint is worth tracing up front: the predictive half of slow-query
// capture (the wall-time half can only be judged after the run, when it
// is too late to have traced).
func (h *History) SlowCandidate(estBytes int64) bool {
	return h.Enabled() && h.cfg.SlowBytes > 0 && estBytes >= h.cfg.SlowBytes
}

// LiveQuery is one in-flight query's handle: Begin returns it, the driver
// annotates it as planning/tracing decisions are made, Finish retires it
// into the ring. A nil *LiveQuery no-ops everywhere.
type LiveQuery struct {
	h      *History
	ID     int64
	Query  string
	Engine string
	Meta   Meta
	Start  time.Time

	mu       sync.Mutex
	planHash uint64
	estRows  int64
	tracer   *obs.Tracer
	sampled  bool
}

// Begin registers a starting query and returns its live handle (nil when
// the history is disabled — the zero-cost path).
func (h *History) Begin(id int64, query, engine string, meta Meta) *LiveQuery {
	if !h.Enabled() {
		return nil
	}
	lq := &LiveQuery{h: h, ID: id, Query: query, Engine: engine, Meta: meta, Start: time.Now(), estRows: -1}
	h.mu.Lock()
	h.live[id] = lq
	h.mu.Unlock()
	return lq
}

// SetPlan records the optimized plan's hash and root cardinality estimate
// (estRows -1 when the optimizer produced none).
func (lq *LiveQuery) SetPlan(hash uint64, estRows int64) {
	if lq == nil {
		return
	}
	lq.mu.Lock()
	lq.planHash = hash
	lq.estRows = estRows
	lq.mu.Unlock()
}

// AttachTrace hands the query's tracer to the history so Finish can
// retain it; sampled marks the 1-in-N sampler (retain unconditionally)
// versus a slow candidate or caller-installed tracer (retain only if the
// run proves slow).
func (lq *LiveQuery) AttachTrace(t *obs.Tracer, sampled bool) {
	if lq == nil {
		return
	}
	lq.mu.Lock()
	lq.tracer = t
	lq.sampled = lq.sampled || sampled
	lq.mu.Unlock()
}

// Traced reports whether a tracer is attached.
func (lq *LiveQuery) Traced() bool {
	if lq == nil {
		return false
	}
	lq.mu.Lock()
	defer lq.mu.Unlock()
	return lq.tracer != nil
}

// Finish retires the query into the ring (and the pending JSONL batch),
// deciding capture retention: keep the trace+profile when the query was
// sampled or crossed a slow threshold (wall or bytes).
func (lq *LiveQuery) Finish(o Outcome, prof *obs.PlanProfile) {
	if lq == nil {
		return
	}
	h := lq.h
	lq.mu.Lock()
	rec := QueryRecord{
		ID:          lq.ID,
		Query:       lq.Query,
		Fingerprint: Fingerprint(lq.Query),
		PlanHash:    lq.planHash,
		Session:     lq.Meta.Session,
		Pool:        lq.Meta.Pool,
		Tenant:      lq.Meta.Tenant,
		Engine:      lq.Engine,
		EstRows:     lq.estRows,
		ActualRows:  o.ActualRows,
		QueueWait:   lq.Meta.QueueWait,
		Wall:        o.Wall,
		Total:       lq.Meta.QueueWait + o.Wall,
		DFSBytes:    o.DFSBytes,
		CacheBytes:  o.CacheBytes,
		TotalBytes:  o.TotalBytes,
		Shuffle:     o.ShuffleBytes,
		Retries:     o.Retries,
		FailedTasks: o.FailedTasks,
		Preemptions: lq.Meta.Preemptions,
		Sampled:     lq.sampled,
		Start:       lq.Start,
	}
	tracer, sampled := lq.tracer, lq.sampled
	lq.mu.Unlock()

	rec.State = o.State
	if rec.State == "" {
		switch {
		case o.Err == nil:
			rec.State = "ok"
		case o.Cancelled:
			rec.State = "cancelled"
		default:
			rec.State = "failed"
		}
	}
	if o.Err != nil {
		rec.Error = o.Err.Error()
	}

	slow := (h.cfg.SlowWall > 0 && o.Wall >= h.cfg.SlowWall) ||
		(h.cfg.SlowBytes > 0 && o.TotalBytes >= h.cfg.SlowBytes)
	capture := tracer != nil && (slow || sampled)
	rec.Traced = capture

	h.stats.Recorded.Add(1)
	if sampled {
		h.stats.Sampled.Add(1)
	}

	var flush []QueryRecord
	var seq int64
	h.mu.Lock()
	delete(h.live, lq.ID)
	h.ring[h.next] = rec
	h.next = (h.next + 1) % len(h.ring)
	h.total++
	if capture {
		h.stats.Captured.Add(1)
		h.caps[rec.ID] = &Capture{ID: rec.ID, Query: rec.Query, Wall: o.Wall, Sampled: sampled, Tracer: tracer, Profile: prof}
		h.capOrder = append(h.capOrder, rec.ID)
		for len(h.capOrder) > h.cfg.MaxCaptures {
			delete(h.caps, h.capOrder[0])
			h.capOrder = h.capOrder[1:]
		}
	}
	h.pending = append(h.pending, rec)
	if len(h.pending) >= h.cfg.FlushEvery {
		flush = h.pending
		h.pending = nil
		h.segSeq++
		seq = h.segSeq
	}
	h.mu.Unlock()
	if flush != nil {
		h.writeSegment(seq, flush)
	}
}

// Flush persists any pending records as a (short) JSONL segment; the
// driver calls it on Close so no finished query is lost.
func (h *History) Flush() {
	if !h.Enabled() {
		return
	}
	h.mu.Lock()
	flush := h.pending
	h.pending = nil
	var seq int64
	if flush != nil {
		h.segSeq++
		seq = h.segSeq
	}
	h.mu.Unlock()
	if flush != nil {
		h.writeSegment(seq, flush)
	}
}

// writeSegment publishes one immutable JSONL segment via the atomic
// temp+CRC+rename path and prunes segments beyond KeepSegments.
func (h *History) writeSegment(seq int64, recs []QueryRecord) {
	if h.fs == nil {
		return
	}
	var buf []byte
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			h.stats.FlushErrors.Add(1)
			return
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	path := fmt.Sprintf("%s/history-%06d.jsonl", h.cfg.Dir, seq)
	if err := h.fs.WriteAtomic(path, buf); err != nil {
		h.stats.FlushErrors.Add(1)
		return
	}
	h.stats.Flushes.Add(1)
	var drop []string
	h.mu.Lock()
	h.segments = append(h.segments, path)
	for len(h.segments) > h.cfg.KeepSegments {
		drop = append(drop, h.segments[0])
		h.segments = h.segments[1:]
	}
	h.mu.Unlock()
	for _, p := range drop {
		h.fs.Remove(p)
	}
}

// Segments lists the currently retained JSONL segment paths, oldest
// first.
func (h *History) Segments() []string {
	if !h.Enabled() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.segments...)
}

// Records returns the ring's contents, oldest first.
func (h *History) Records() []QueryRecord {
	if !h.Enabled() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.recordsLocked()
}

func (h *History) recordsLocked() []QueryRecord {
	n := int(h.total)
	if n > len(h.ring) {
		n = len(h.ring)
	}
	out := make([]QueryRecord, 0, n)
	start := h.next - n
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, h.ring[(start+i)%len(h.ring)])
	}
	return out
}

// Tail returns the most recent n records, newest first.
func (h *History) Tail(n int) []QueryRecord {
	recs := h.Records()
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	return recs
}

// Record returns the record with the given query id, if still in the
// ring.
func (h *History) Record(id int64) (QueryRecord, bool) {
	if !h.Enabled() {
		return QueryRecord{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rec := range h.recordsLocked() {
		if rec.ID == id {
			return rec, true
		}
	}
	return QueryRecord{}, false
}

// Last returns the most recently finished record.
func (h *History) Last() (QueryRecord, bool) {
	recs := h.Tail(1)
	if len(recs) == 0 {
		return QueryRecord{}, false
	}
	return recs[0], true
}

// Total counts every record ever finished (the ring holds the most recent
// RingSize of them).
func (h *History) Total() int64 {
	if !h.Enabled() {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// LiveInfo is a snapshot of one in-flight query.
type LiveInfo struct {
	ID      int64
	Query   string
	Engine  string
	Session string
	Pool    string
	Elapsed time.Duration
	Traced  bool
}

// Live snapshots the in-flight queries, oldest first.
func (h *History) Live() []LiveInfo {
	if !h.Enabled() {
		return nil
	}
	h.mu.Lock()
	lqs := make([]*LiveQuery, 0, len(h.live))
	for _, lq := range h.live {
		lqs = append(lqs, lq)
	}
	h.mu.Unlock()
	out := make([]LiveInfo, 0, len(lqs))
	for _, lq := range lqs {
		lq.mu.Lock()
		out = append(out, LiveInfo{
			ID: lq.ID, Query: lq.Query, Engine: lq.Engine,
			Session: lq.Meta.Session, Pool: lq.Meta.Pool,
			Elapsed: time.Since(lq.Start), Traced: lq.tracer != nil,
		})
		lq.mu.Unlock()
	}
	sortLive(out)
	return out
}

func sortLive(out []LiveInfo) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// Capture returns a retained slow/sampled query's trace+profile.
func (h *History) Capture(id int64) (*Capture, bool) {
	if !h.Enabled() {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.caps[id]
	return c, ok
}

// Captures lists retained capture ids, oldest first.
func (h *History) Captures() []int64 {
	if !h.Enabled() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]int64(nil), h.capOrder...)
}

// Fingerprint hashes a query text with literals normalized away (numbers
// and string literals replaced by '?', case folded, whitespace collapsed)
// so repeated parameterized traffic shares one fingerprint.
func Fingerprint(query string) uint64 {
	h := fnv.New64a()
	var one [1]byte
	emit := func(c byte) {
		one[0] = c
		h.Write(one[:])
	}
	prevIdent := false // previous emitted char continued an identifier
	i, n := 0, len(query)
	for i < n {
		c := query[i]
		switch {
		case c == '\'':
			// String literal; '' escapes a quote.
			i++
			for i < n {
				if query[i] == '\'' {
					if i+1 < n && query[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			emit('?')
			prevIdent = false
		case c >= '0' && c <= '9' && !prevIdent:
			for i < n && ((query[i] >= '0' && query[i] <= '9') || query[i] == '.') {
				i++
			}
			emit('?')
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			for i < n {
				c = query[i]
				if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
					break
				}
				i++
			}
			emit(' ')
			prevIdent = false
		default:
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			emit(c)
			prevIdent = c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
			i++
		}
	}
	return h.Sum64()
}
