package sysdb

import (
	"context"
	"time"
)

// Meta is who/where context for a query record, supplied by whatever
// admitted the query: the server's session loop sets session, pool,
// tenant, admission wait and prior-preemption count before dispatching to
// the driver; bare driver callers (REPL, tests) leave it zero.
type Meta struct {
	Session string
	Pool    string
	Tenant  string
	// QueueWait is the admission-queue wait that preceded this attempt.
	QueueWait time.Duration
	// Preemptions counts earlier attempts of this statement that were
	// cancel-and-requeued before this one ran.
	Preemptions int64
	// Classify, when set, maps a run error (and the context cancel cause)
	// to a final state string — the server uses it to label preemptions,
	// which look like ordinary cancellations from inside the driver.
	Classify func(err, cause error) string
}

type metaKey struct{}

// WithMeta attaches query-record metadata to a context; the driver reads
// it at query start.
func WithMeta(ctx context.Context, m Meta) context.Context {
	return context.WithValue(ctx, metaKey{}, m)
}

// MetaFrom extracts the metadata attached by WithMeta (zero when absent).
func MetaFrom(ctx context.Context) Meta {
	m, _ := ctx.Value(metaKey{}).(Meta)
	return m
}
