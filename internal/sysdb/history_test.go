package sysdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/obs"
)

func TestRingBounded(t *testing.T) {
	h := New(nil, Config{RingSize: 4, SampleEvery: -1})
	for i := 1; i <= 10; i++ {
		lq := h.Begin(int64(i), fmt.Sprintf("select %d", i), "mr", Meta{})
		lq.Finish(Outcome{ActualRows: int64(i), Wall: time.Duration(i) * time.Millisecond}, nil)
	}
	recs := h.Records()
	if len(recs) != 4 {
		t.Fatalf("ring length = %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := int64(7 + i); rec.ID != want {
			t.Fatalf("ring[%d].ID = %d, want %d (oldest-first)", i, rec.ID, want)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d, want 10", h.Total())
	}
	tail := h.Tail(2)
	if len(tail) != 2 || tail[0].ID != 10 || tail[1].ID != 9 {
		t.Fatalf("Tail(2) = %+v, want ids 10,9 newest-first", tail)
	}
	if rec, ok := h.Last(); !ok || rec.ID != 10 || rec.State != "ok" {
		t.Fatalf("Last = %+v ok=%v", rec, ok)
	}
	if rec, ok := h.Record(8); !ok || rec.ActualRows != 8 {
		t.Fatalf("Record(8) = %+v ok=%v", rec, ok)
	}
	if _, ok := h.Record(3); ok {
		t.Fatal("Record(3) should have been evicted from the ring")
	}
}

func TestStates(t *testing.T) {
	h := New(nil, Config{SampleEvery: -1})
	h.Begin(1, "q", "tez", Meta{}).Finish(Outcome{}, nil)
	h.Begin(2, "q", "tez", Meta{}).Finish(Outcome{Err: errors.New("boom")}, nil)
	h.Begin(3, "q", "tez", Meta{}).Finish(Outcome{Err: errors.New("ctx"), Cancelled: true}, nil)
	h.Begin(4, "q", "tez", Meta{}).Finish(Outcome{Err: errors.New("pre"), State: "preempted"}, nil)
	want := map[int64]string{1: "ok", 2: "failed", 3: "cancelled", 4: "preempted"}
	for id, state := range want {
		rec, ok := h.Record(id)
		if !ok || rec.State != state {
			t.Fatalf("record %d state = %q ok=%v, want %q", id, rec.State, ok, state)
		}
	}
	if rec, _ := h.Record(2); rec.Error != "boom" {
		t.Fatalf("record 2 error = %q", rec.Error)
	}
}

func TestFingerprintNormalizesLiterals(t *testing.T) {
	a := Fingerprint("SELECT a FROM t WHERE x = 10 AND s = 'foo'")
	b := Fingerprint("select a from  t where x = 99999 and s = 'other''quoted'")
	if a != b {
		t.Fatalf("literal-normalized fingerprints differ: %x vs %x", a, b)
	}
	c := Fingerprint("select b from t where x = 10 and s = 'foo'")
	if a == c {
		t.Fatal("different column should change the fingerprint")
	}
	// Digits inside identifiers are part of the name, not a literal.
	if Fingerprint("select c1 from t") == Fingerprint("select c2 from t") {
		t.Fatal("identifier digits must not be normalized away")
	}
}

func TestJSONLFlushAndRotation(t *testing.T) {
	fs := dfs.New()
	h := New(fs, Config{FlushEvery: 3, KeepSegments: 2, SampleEvery: -1, Dir: "/sys/history"})
	for i := 1; i <= 10; i++ {
		lq := h.Begin(int64(i), "select 1", "mr", Meta{})
		lq.Finish(Outcome{ActualRows: 1}, nil)
	}
	// 10 finishes at FlushEvery=3 → 3 segments written, KeepSegments=2 kept.
	segs := h.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %v, want 2 retained", segs)
	}
	h.Flush() // records 10 (pending=1) → third retained segment
	segs = h.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments after flush = %v, want 2 retained", segs)
	}
	if got := len(fs.List("/sys/history")); got != 2 {
		t.Fatalf("on-DFS segments = %d, want pruned to 2", got)
	}
	// The last segment holds exactly record 10 as one JSON line.
	data, err := fs.ReadVerified(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	var ids []int64
	for sc.Scan() {
		var rec QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		ids = append(ids, rec.ID)
	}
	if len(ids) != 1 || ids[0] != 10 {
		t.Fatalf("final segment ids = %v, want [10]", ids)
	}
	if h.Stats().Flushes.Load() != 4 {
		t.Fatalf("flushes = %d, want 4", h.Stats().Flushes.Load())
	}
}

func TestCaptureRetention(t *testing.T) {
	h := New(nil, Config{SlowWall: 50 * time.Millisecond, SlowBytes: 1000, SampleEvery: -1, MaxCaptures: 2})

	// Fast, small, untraced: no capture.
	h.Begin(1, "q1", "mr", Meta{}).Finish(Outcome{Wall: time.Millisecond}, nil)
	// Traced but fast and small: trace discarded.
	lq := h.Begin(2, "q2", "mr", Meta{})
	lq.AttachTrace(obs.NewTracer(), false)
	lq.Finish(Outcome{Wall: time.Millisecond}, nil)
	// Traced and slow by wall: captured.
	lq = h.Begin(3, "q3", "mr", Meta{})
	lq.AttachTrace(obs.NewTracer(), false)
	lq.Finish(Outcome{Wall: time.Second}, nil)
	// Traced and big by bytes: captured.
	lq = h.Begin(4, "q4", "mr", Meta{})
	lq.AttachTrace(obs.NewTracer(), false)
	lq.Finish(Outcome{Wall: time.Millisecond, TotalBytes: 4000}, nil)
	// Sampled: captured regardless of speed.
	lq = h.Begin(5, "q5", "mr", Meta{})
	lq.AttachTrace(obs.NewTracer(), true)
	lq.Finish(Outcome{Wall: time.Microsecond}, nil)

	if _, ok := h.Capture(1); ok {
		t.Fatal("untraced query must not be captured")
	}
	if _, ok := h.Capture(2); ok {
		t.Fatal("fast small traced query must not be retained")
	}
	// MaxCaptures=2 → 3 evicted, 4 and 5 retained.
	if _, ok := h.Capture(3); ok {
		t.Fatal("capture 3 should have been evicted (MaxCaptures=2)")
	}
	for _, id := range []int64{4, 5} {
		c, ok := h.Capture(id)
		if !ok || c.Tracer == nil {
			t.Fatalf("capture %d missing", id)
		}
	}
	if rec, _ := h.Record(3); rec.Traced != true {
		t.Fatal("record 3 was captured at finish; Traced should be recorded true")
	}
	if rec, _ := h.Record(2); rec.Traced {
		t.Fatal("record 2 trace was discarded; Traced should be false")
	}
	if got := h.Captures(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Captures() = %v, want [4 5]", got)
	}
}

func TestSampling(t *testing.T) {
	h := New(nil, Config{SampleEvery: 4})
	var hits int
	for i := 0; i < 16; i++ {
		if h.SampleNext() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("SampleNext hit %d of 16 at SampleEvery=4, want 4", hits)
	}
	if !New(nil, Config{SampleEvery: 1}).SampleNext() {
		t.Fatal("SampleEvery=1 must sample every query")
	}
	if New(nil, Config{SampleEvery: -1}).SampleNext() {
		t.Fatal("negative SampleEvery must disable sampling")
	}
}

func TestDisabledAndNilSafety(t *testing.T) {
	h := New(dfs.New(), Config{Disabled: true})
	if h.Enabled() {
		t.Fatal("disabled history reports Enabled")
	}
	lq := h.Begin(1, "q", "mr", Meta{})
	if lq != nil {
		t.Fatal("disabled Begin must return nil")
	}
	// All of these must no-op on the nil handle.
	lq.SetPlan(1, 2)
	lq.AttachTrace(obs.NewTracer(), true)
	if lq.Traced() {
		t.Fatal("nil LiveQuery reports traced")
	}
	lq.Finish(Outcome{}, nil)
	h.Flush()
	if h.SampleNext() || h.SlowCandidate(1<<40) || h.Total() != 0 {
		t.Fatal("disabled history must be inert")
	}
	if h.Records() != nil || h.Live() != nil || h.Segments() != nil {
		t.Fatal("disabled history must return empty views")
	}
	var nilH *History
	if nilH.Enabled() || nilH.SampleNext() {
		t.Fatal("nil *History must be inert")
	}
	nilH.Flush()
}

func TestLiveQueries(t *testing.T) {
	h := New(nil, Config{SampleEvery: -1})
	lq1 := h.Begin(1, "long running", "llap", Meta{Session: "s1", Pool: "interactive"})
	h.Begin(2, "other", "llap", Meta{})
	live := h.Live()
	if len(live) != 2 || live[0].ID != 1 || live[0].Session != "s1" || live[0].Pool != "interactive" {
		t.Fatalf("Live() = %+v", live)
	}
	lq1.Finish(Outcome{}, nil)
	if live = h.Live(); len(live) != 1 || live[0].ID != 2 {
		t.Fatalf("after finish Live() = %+v", live)
	}
}

func TestConcurrentFinish(t *testing.T) {
	fs := dfs.New()
	h := New(fs, Config{RingSize: 64, FlushEvery: 8, SampleEvery: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := int64(g*1000 + i)
				lq := h.Begin(id, "select 1", "tez", Meta{})
				if h.SampleNext() {
					lq.AttachTrace(obs.NewTracer(), true)
				}
				lq.Finish(Outcome{ActualRows: 1}, nil)
			}
		}(g)
	}
	wg.Wait()
	if h.Total() != 400 {
		t.Fatalf("Total = %d, want 400", h.Total())
	}
	if len(h.Records()) != 64 {
		t.Fatalf("ring = %d, want 64", len(h.Records()))
	}
}

func TestSysTableDefs(t *testing.T) {
	h := New(nil, Config{SampleEvery: -1})
	lq := h.Begin(7, "select x", "mr", Meta{Session: "s", Pool: "p", Tenant: "t"})
	lq.SetPlan(0xabc, 42)
	lq.Finish(Outcome{ActualRows: 5, DFSBytes: 100, CacheBytes: 20, TotalBytes: 120, Wall: 3 * time.Millisecond}, nil)
	h.Begin(8, "running", "tez", Meta{})

	q := h.QueriesTable()
	if q.Name != "sys.queries" {
		t.Fatalf("name = %s", q.Name)
	}
	rows := q.Rows()
	if len(rows) != 1 {
		t.Fatalf("sys.queries rows = %d", len(rows))
	}
	if len(rows[0]) != len(q.Schema.Columns) {
		t.Fatalf("row width %d != schema width %d", len(rows[0]), len(q.Schema.Columns))
	}
	for i, v := range rows[0] {
		switch v.(type) {
		case int64, string:
		default:
			t.Fatalf("sys.queries col %s has non-Long/String value %T", q.Schema.Columns[i].Name, v)
		}
	}
	if rows[0][0] != int64(7) || rows[0][1] != "select x" || rows[0][11] != int64(5) {
		t.Fatalf("sys.queries row = %v", rows[0])
	}

	lv := h.LiveQueriesTable()
	rows = lv.Rows()
	if len(rows) != 1 || rows[0][0] != int64(8) {
		t.Fatalf("sys.live_queries rows = %v", rows)
	}
	if len(rows[0]) != len(lv.Schema.Columns) {
		t.Fatalf("live row width %d != schema width %d", len(rows[0]), len(lv.Schema.Columns))
	}
}

func TestIsSysTable(t *testing.T) {
	if !IsSysTable("sys.queries") || IsSysTable("lineitem") || IsSysTable("system") {
		t.Fatal("IsSysTable misclassifies")
	}
}
