// rcfile.go implements RCFile (He et al., ICDE 2011), the columnar format
// ORC File improves on. A table is split into small row groups (4 MB by
// default — the small default stripe the paper contrasts with ORC's 256 MB,
// §4.1); inside a group, columns are stored separately, so readers can skip
// unneeded columns, and each column chunk carries a run-length-encoded
// length section plus the concatenated binary SerDe values. The format
// keeps the shortcomings the paper lists in §3: the SerDe serializes one
// value at a time, columns with complex types are not decomposed, and there
// are no indexes or statistics, so no predicate pushdown.
package fileformat

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/orc/stream"
	"repro/internal/serde"
	"repro/internal/types"
)

// RCRowGroupSize is the default RCFile row-group size (paper §4.1: 4 MB).
const RCRowGroupSize = 4 << 20

const rcMagic = "RCFG"

// rcNull is the length-stream sentinel for NULL values.
const rcNull = -1

type rcWriter struct {
	f         *dfs.FileWriter
	schema    *types.Schema
	codec     compress.Codec
	groupSize int64

	// Buffered row group: per-column value lengths (RLE) and data bytes.
	lengths  []stream.IntWriter
	data     [][]byte
	numRows  int
	buffered int64
}

func newRCWriter(f *dfs.FileWriter, schema *types.Schema, opts *Options) (Writer, error) {
	codec, err := compress.ForKind(opts.Compression)
	if err != nil {
		return nil, err
	}
	w := &rcWriter{
		f:         f,
		schema:    schema,
		codec:     codec,
		groupSize: RCRowGroupSize,
		lengths:   make([]stream.IntWriter, len(schema.Columns)),
		data:      make([][]byte, len(schema.Columns)),
	}
	header := append([]byte(rcMagic), byte(opts.Compression))
	if _, err := f.Write(header); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *rcWriter) Write(row types.Row) error {
	if len(row) != len(w.schema.Columns) {
		return fmt.Errorf("rcfile: row has %d columns, schema has %d", len(row), len(w.schema.Columns))
	}
	for i, col := range w.schema.Columns {
		if row[i] == nil {
			w.lengths[i].WriteInt(rcNull)
			continue
		}
		// The RCFile SerDe serializes a single value at a time and does
		// not decompose complex types: a Map lands here as one blob.
		b := serde.SerializeBinaryValue(col.Type, row[i])
		w.lengths[i].WriteInt(int64(len(b)))
		w.data[i] = append(w.data[i], b...)
		w.buffered += int64(len(b)) + 1
	}
	w.numRows++
	if w.buffered >= w.groupSize {
		return w.flushGroup()
	}
	return nil
}

func (w *rcWriter) flushGroup() error {
	if w.numRows == 0 {
		return nil
	}
	// Assemble per-column chunks: [uvarint lengthsLen][lengths][data].
	chunks := make([][]byte, len(w.data))
	for i := range w.data {
		w.lengths[i].FlushRun()
		lb := w.lengths[i].Bytes()
		chunk := binary.AppendUvarint(nil, uint64(len(lb)))
		chunk = append(chunk, lb...)
		chunks[i] = append(chunk, w.data[i]...)
	}
	// Group header: numRows, numCols, then per-column (rawLen, storedLen).
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(w.numRows))
	hdr = binary.AppendUvarint(hdr, uint64(len(chunks)))
	stored := make([][]byte, len(chunks))
	for i, raw := range chunks {
		stored[i] = raw
		if w.codec != nil {
			var err error
			stored[i], err = w.codec.Compress(nil, raw)
			if err != nil {
				return err
			}
		}
		hdr = binary.AppendUvarint(hdr, uint64(len(raw)))
		hdr = binary.AppendUvarint(hdr, uint64(len(stored[i])))
	}
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	for i := range stored {
		if _, err := w.f.Write(stored[i]); err != nil {
			return err
		}
		w.lengths[i].Reset()
		w.data[i] = w.data[i][:0]
	}
	w.numRows = 0
	w.buffered = 0
	return nil
}

func (w *rcWriter) Close() error {
	if err := w.flushGroup(); err != nil {
		return err
	}
	return w.f.Close()
}

type rcReader struct {
	f      *dfs.FileReader
	schema *types.Schema
	codec  compress.Codec
	proj   projection
	// Included column indexes in schema order; other columns' chunks are
	// skipped without reading (RCFile's one strength the paper grants it).
	needed []bool

	// Current row group: per-column length decoders and data cursors.
	lengths []*stream.IntReader
	data    [][]byte
	pos     []int
	left    int
}

func newRCReader(f *dfs.FileReader, schema *types.Schema, scan ScanOptions) (Reader, error) {
	proj, err := newProjection(schema, scan.Include)
	if err != nil {
		return nil, err
	}
	header := make([]byte, len(rcMagic)+1)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("rcfile: reading header: %w", err)
	}
	if string(header[:len(rcMagic)]) != rcMagic {
		return nil, fmt.Errorf("rcfile: bad magic %q", header[:len(rcMagic)])
	}
	codec, err := compress.ForKind(compress.Kind(header[len(rcMagic)]))
	if err != nil {
		return nil, err
	}
	needed := make([]bool, len(schema.Columns))
	if scan.Include == nil {
		for i := range needed {
			needed[i] = true
		}
	} else {
		for _, idx := range proj.indexes {
			needed[idx] = true
		}
	}
	return &rcReader{
		f:       f,
		schema:  schema,
		codec:   codec,
		proj:    proj,
		needed:  needed,
		lengths: make([]*stream.IntReader, len(schema.Columns)),
		data:    make([][]byte, len(schema.Columns)),
		pos:     make([]int, len(schema.Columns)),
	}, nil
}

func (r *rcReader) Next() (types.Row, error) {
	for r.left == 0 {
		if err := r.readGroup(); err != nil {
			return nil, err
		}
	}
	row := make(types.Row, len(r.schema.Columns))
	for i, col := range r.schema.Columns {
		if !r.needed[i] {
			continue
		}
		n, err := r.lengths[i].ReadInt()
		if err != nil {
			return nil, fmt.Errorf("rcfile: column %s lengths: %w", col.Name, err)
		}
		if n == rcNull {
			continue
		}
		if r.pos[i]+int(n) > len(r.data[i]) {
			return nil, fmt.Errorf("rcfile: column %s overruns chunk", col.Name)
		}
		b := r.data[i][r.pos[i] : r.pos[i]+int(n)]
		r.pos[i] += int(n)
		// One-value-at-a-time lazy deserialization: the bytes are parsed
		// only for needed columns, at access time.
		v, err := serde.DeserializeBinaryValue(col.Type, b)
		if err != nil {
			return nil, fmt.Errorf("rcfile: column %s: %w", col.Name, err)
		}
		row[i] = v
	}
	r.left--
	return r.proj.apply(row), nil
}

func (r *rcReader) readGroup() error {
	numRows, err := readUvarint(r.f)
	if err != nil {
		return err // io.EOF at a clean group boundary
	}
	numCols, err := readUvarint(r.f)
	if err != nil {
		return fmt.Errorf("rcfile: reading group header: %w", err)
	}
	if int(numCols) != len(r.schema.Columns) {
		return fmt.Errorf("rcfile: group has %d columns, schema has %d", numCols, len(r.schema.Columns))
	}
	rawLens := make([]uint64, numCols)
	storedLens := make([]uint64, numCols)
	for i := range rawLens {
		if rawLens[i], err = readUvarint(r.f); err != nil {
			return err
		}
		if storedLens[i], err = readUvarint(r.f); err != nil {
			return err
		}
	}
	for i := 0; i < int(numCols); i++ {
		if !r.needed[i] {
			if _, err := r.f.Seek(int64(storedLens[i]), io.SeekCurrent); err != nil {
				return err
			}
			r.lengths[i] = nil
			r.data[i] = nil
			r.pos[i] = 0
			continue
		}
		stored := make([]byte, storedLens[i])
		if _, err := io.ReadFull(r.f, stored); err != nil {
			return fmt.Errorf("rcfile: reading column %d: %w", i, err)
		}
		raw := stored
		if r.codec != nil {
			raw, err = r.codec.Decompress(nil, stored, int(rawLens[i]))
			if err != nil {
				return err
			}
		}
		lengthsLen, m := binary.Uvarint(raw)
		if m <= 0 || m+int(lengthsLen) > len(raw) {
			return fmt.Errorf("rcfile: corrupt chunk header in column %d", i)
		}
		r.lengths[i] = stream.NewIntReader(raw[m:m+int(lengthsLen)], 0)
		r.data[i] = raw[m+int(lengthsLen):]
		r.pos[i] = 0
	}
	r.left = int(numRows)
	return nil
}

func (r *rcReader) Close() error { return nil }
