package fileformat

import (
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Col("id", types.Primitive(types.Long)),
		types.Col("name", types.Primitive(types.String)),
		types.Col("score", types.Primitive(types.Double)),
		types.Col("tags", types.NewArray(types.Primitive(types.String))),
	)
}

func testRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		tags := []any{}
		for j := 0; j < i%3; j++ {
			tags = append(tags, fmt.Sprintf("t%d", j))
		}
		rows[i] = types.Row{int64(i), fmt.Sprintf("name-%d", i%17), float64(i) / 3, tags}
		if i%10 == 0 {
			rows[i][1] = nil
		}
	}
	return rows
}

func writeRows(t *testing.T, fs *dfs.FS, path string, kind Kind, opts *Options, rows []types.Row) {
	t.Helper()
	w, err := Create(fs, path, testSchema(), kind, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if err := w.Write(row); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readRows(t *testing.T, fs *dfs.FS, path string, kind Kind, scan ScanOptions) []types.Row {
	t.Helper()
	r, err := Open(fs, path, testSchema(), kind, scan)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []types.Row
	for {
		row, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	rows := testRows(3000)
	for _, kind := range []Kind{Text, Sequence, RC, ORC} {
		for _, codec := range []compress.Kind{compress.None, compress.Snappy} {
			if kind == Text && codec != compress.None {
				continue
			}
			name := fmt.Sprintf("%s-%s", kind, codec)
			t.Run(name, func(t *testing.T) {
				fs := dfs.New()
				path := "/wh/t/" + name
				writeRows(t, fs, path, kind, &Options{Compression: codec}, rows)
				got := readRows(t, fs, path, kind, ScanOptions{})
				if len(got) != len(rows) {
					t.Fatalf("read %d rows, want %d", len(got), len(rows))
				}
				for i := range rows {
					if !reflect.DeepEqual(got[i], rows[i]) {
						t.Fatalf("row %d = %#v, want %#v", i, got[i], rows[i])
					}
				}
			})
		}
	}
}

func TestProjectionAllFormats(t *testing.T) {
	rows := testRows(500)
	for _, kind := range []Kind{Text, Sequence, RC, ORC} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := dfs.New()
			path := "/wh/p"
			writeRows(t, fs, path, kind, nil, rows)
			got := readRows(t, fs, path, kind, ScanOptions{Include: []string{"score", "id"}})
			for i := range rows {
				if len(got[i]) != 2 {
					t.Fatalf("row width = %d", len(got[i]))
				}
				if got[i][0] != rows[i][2] || got[i][1] != rows[i][0] {
					t.Fatalf("row %d = %v", i, got[i])
				}
			}
		})
	}
}

// TestColumnarFormatsSkipColumnBytes checks the paper's §3 narrative: the
// columnar formats (RC, ORC) read fewer DFS bytes under projection, while
// the row formats must read everything.
func TestColumnarFormatsSkipColumnBytes(t *testing.T) {
	rows := testRows(20000)
	bytesRead := map[Kind]int64{}
	for _, kind := range []Kind{Text, RC, ORC} {
		fs := dfs.New()
		path := "/wh/skip"
		writeRows(t, fs, path, kind, nil, rows)
		before := fs.Stats().Snapshot()
		readRows(t, fs, path, kind, ScanOptions{Include: []string{"id"}})
		total := fs.TotalSize("/wh")
		read := fs.Stats().Snapshot().Diff(before).BytesRead
		bytesRead[kind] = read * 100 / total // percent of file size
	}
	if bytesRead[Text] < 100 {
		t.Errorf("TextFile read %d%% of file; projection should not help", bytesRead[Text])
	}
	if bytesRead[RC] >= bytesRead[Text] {
		t.Errorf("RCFile read %d%%, TextFile %d%%; columnar should read less", bytesRead[RC], bytesRead[Text])
	}
	if bytesRead[ORC] >= 100 {
		t.Errorf("ORC read %d%% of file under projection", bytesRead[ORC])
	}
}

// TestStorageEfficiencyOrdering checks the Table 2 shape on a miniature
// dataset: ORC < RCFile < Text, and Snappy shrinks both columnar formats.
func TestStorageEfficiencyOrdering(t *testing.T) {
	rows := testRows(20000)
	size := func(kind Kind, codec compress.Kind) int64 {
		fs := dfs.New()
		writeRows(t, fs, "/wh/f", kind, &Options{Compression: codec}, rows)
		fi, err := fs.Stat("/wh/f")
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size
	}
	text := size(Text, compress.None)
	rc := size(RC, compress.None)
	rcSnappy := size(RC, compress.Snappy)
	orcPlain := size(ORC, compress.None)
	orcSnappy := size(ORC, compress.Snappy)
	if !(orcPlain < rc && rc < text) {
		t.Errorf("size ordering violated: orc=%d rc=%d text=%d", orcPlain, rc, text)
	}
	if rcSnappy >= rc {
		t.Errorf("snappy did not shrink RCFile: %d >= %d", rcSnappy, rc)
	}
	if orcSnappy >= orcPlain {
		t.Errorf("snappy did not shrink ORC: %d >= %d", orcSnappy, orcPlain)
	}
}

func TestORCPredicatePushdownThroughRegistry(t *testing.T) {
	rows := testRows(20000)
	fs := dfs.New()
	writeRows(t, fs, "/wh/ppd", ORC, &Options{ORCOptions: &orc.WriterOptions{RowIndexStride: 1000}}, rows)
	sarg := orc.NewSearchArgument(orc.Predicate{Column: "id", Op: orc.PredLT, Literals: []any{int64(500)}})
	got := readRows(t, fs, "/wh/ppd", ORC, ScanOptions{Include: []string{"id"}, SArg: sarg})
	if len(got) != 1000 { // one full index group
		t.Fatalf("read %d rows, want 1000", len(got))
	}
}

func TestKindParsing(t *testing.T) {
	for _, k := range []Kind{Text, Sequence, RC, ORC} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("PARQUET"); err == nil {
		t.Error("ParseKind accepted unknown format")
	}
}

func TestOpenMissingFile(t *testing.T) {
	fs := dfs.New()
	for _, kind := range []Kind{Text, Sequence, RC, ORC} {
		if _, err := Open(fs, "/missing", testSchema(), kind, ScanOptions{}); err == nil {
			t.Errorf("%s: Open succeeded on missing file", kind)
		}
	}
}

func TestFormatMagicMismatch(t *testing.T) {
	fs := dfs.New()
	writeRows(t, fs, "/wh/rc", RC, nil, testRows(10))
	if _, err := Open(fs, "/wh/rc", testSchema(), Sequence, ScanOptions{}); err == nil {
		t.Error("sequence reader accepted RC file")
	}
	if _, err := Open(fs, "/wh/rc", testSchema(), ORC, ScanOptions{}); err == nil {
		t.Error("ORC reader accepted RC file")
	}
}

func TestEmptyFiles(t *testing.T) {
	for _, kind := range []Kind{Text, Sequence, RC, ORC} {
		fs := dfs.New()
		writeRows(t, fs, "/wh/empty", kind, nil, nil)
		got := readRows(t, fs, "/wh/empty", kind, ScanOptions{})
		if len(got) != 0 {
			t.Errorf("%s: read %d rows from empty file", kind, len(got))
		}
	}
}

func TestTextRejectsCompression(t *testing.T) {
	fs := dfs.New()
	if _, err := Create(fs, "/wh/t", testSchema(), Text, &Options{Compression: compress.Zlib}); err == nil {
		t.Error("text writer accepted compression")
	}
}
