// seqfile.go implements SequenceFile (§3): a flat file of binary key/value
// records. The key is the record number; the value is the text-SerDe
// rendering of the row. Like Hadoop's block-compressed SequenceFile, rows
// are batched into blocks and each block's value bytes are compressed with
// the configured codec.
package fileformat

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/serde"
	"repro/internal/types"
)

const (
	seqMagic     = "SEQG"
	seqBlockRows = 1000
)

type seqWriter struct {
	f      *dfs.FileWriter
	serde  serde.TextSerDe
	codec  compress.Codec
	ckind  compress.Kind
	rowNum int64
	// Current block.
	keys   []byte
	values []byte
	n      int
}

func newSeqWriter(f *dfs.FileWriter, schema *types.Schema, opts *Options) (Writer, error) {
	codec, err := compress.ForKind(opts.Compression)
	if err != nil {
		return nil, err
	}
	w := &seqWriter{f: f, serde: serde.TextSerDe{Schema: schema}, codec: codec, ckind: opts.Compression}
	header := append([]byte(seqMagic), byte(opts.Compression))
	if _, err := f.Write(header); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *seqWriter) Write(row types.Row) error {
	val, err := w.serde.Serialize(row)
	if err != nil {
		return err
	}
	w.keys = binary.AppendUvarint(w.keys, uint64(w.rowNum))
	w.rowNum++
	w.values = binary.AppendUvarint(w.values, uint64(len(val)))
	w.values = append(w.values, val...)
	w.n++
	if w.n >= seqBlockRows {
		return w.flushBlock()
	}
	return nil
}

func (w *seqWriter) flushBlock() error {
	if w.n == 0 {
		return nil
	}
	stored := w.values
	rawLen := len(w.values)
	if w.codec != nil {
		var err error
		stored, err = w.codec.Compress(nil, w.values)
		if err != nil {
			return err
		}
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(w.n))
	hdr = binary.AppendUvarint(hdr, uint64(len(w.keys)))
	hdr = binary.AppendUvarint(hdr, uint64(rawLen))
	hdr = binary.AppendUvarint(hdr, uint64(len(stored)))
	for _, part := range [][]byte{hdr, w.keys, stored} {
		if _, err := w.f.Write(part); err != nil {
			return err
		}
	}
	w.keys = w.keys[:0]
	w.values = w.values[:0]
	w.n = 0
	return nil
}

func (w *seqWriter) Close() error {
	if err := w.flushBlock(); err != nil {
		return err
	}
	return w.f.Close()
}

type seqReader struct {
	f     *dfs.FileReader
	serde serde.TextSerDe
	codec compress.Codec
	proj  projection
	// Current block.
	values []byte
	pos    int
	left   int
}

func newSeqReader(f *dfs.FileReader, schema *types.Schema, scan ScanOptions) (Reader, error) {
	proj, err := newProjection(schema, scan.Include)
	if err != nil {
		return nil, err
	}
	header := make([]byte, len(seqMagic)+1)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("seqfile: reading header: %w", err)
	}
	if string(header[:len(seqMagic)]) != seqMagic {
		return nil, fmt.Errorf("seqfile: bad magic %q", header[:len(seqMagic)])
	}
	codec, err := compress.ForKind(compress.Kind(header[len(seqMagic)]))
	if err != nil {
		return nil, err
	}
	return &seqReader{f: f, serde: serde.TextSerDe{Schema: schema}, codec: codec, proj: proj}, nil
}

func (r *seqReader) Next() (types.Row, error) {
	for r.left == 0 {
		if err := r.readBlock(); err != nil {
			return nil, err
		}
	}
	n, m := binary.Uvarint(r.values[r.pos:])
	if m <= 0 {
		return nil, fmt.Errorf("seqfile: corrupt value length")
	}
	r.pos += m
	if r.pos+int(n) > len(r.values) {
		return nil, fmt.Errorf("seqfile: truncated value")
	}
	line := r.values[r.pos : r.pos+int(n)]
	r.pos += int(n)
	r.left--
	row, err := r.serde.Deserialize(line)
	if err != nil {
		return nil, err
	}
	return r.proj.apply(row), nil
}

func (r *seqReader) readBlock() error {
	var hdr [4]uint64
	for i := range hdr {
		v, err := readUvarint(r.f)
		if err != nil {
			if i == 0 && err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("seqfile: reading block header: %w", err)
		}
		hdr[i] = v
	}
	numRows, keyLen, rawLen, storedLen := hdr[0], hdr[1], hdr[2], hdr[3]
	// Keys carry only record numbers; skip them.
	if _, err := r.f.Seek(int64(keyLen), io.SeekCurrent); err != nil {
		return err
	}
	stored := make([]byte, storedLen)
	if _, err := io.ReadFull(r.f, stored); err != nil {
		return fmt.Errorf("seqfile: reading block: %w", err)
	}
	if r.codec != nil {
		raw, err := r.codec.Decompress(nil, stored, int(rawLen))
		if err != nil {
			return err
		}
		r.values = raw
	} else {
		r.values = stored
	}
	r.pos = 0
	r.left = int(numRows)
	return nil
}

func (r *seqReader) Close() error { return nil }

// readUvarint reads a uvarint byte by byte from a sequential reader.
func readUvarint(f io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var buf [1]byte
	for i := 0; ; i++ {
		if _, err := f.Read(buf[:]); err != nil {
			if i == 0 {
				return 0, io.EOF
			}
			return 0, err
		}
		b := buf[0]
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
		if s > 63 {
			return 0, fmt.Errorf("uvarint overflow")
		}
	}
}
