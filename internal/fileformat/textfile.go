// textfile.go implements TextFile, Hive's original plain-text format (§3):
// one delimited line per row, serialized by the text SerDe. Row-oriented and
// data-type-agnostic, it compresses poorly and always reads every column.
package fileformat

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/serde"
	"repro/internal/types"
)

type textWriter struct {
	f     *dfs.FileWriter
	serde serde.TextSerDe
	buf   bytes.Buffer
}

func newTextWriter(f *dfs.FileWriter, schema *types.Schema, opts *Options) (Writer, error) {
	if opts.Compression != compress.None {
		// Hive stores compressed text as whole-file codecs; our harness
		// never exercises that configuration (Table 2 reports plain text
		// only), so reject it rather than silently ignore it.
		return nil, fmt.Errorf("textfile: compression not supported")
	}
	return &textWriter{f: f, serde: serde.TextSerDe{Schema: schema}}, nil
}

func (w *textWriter) Write(row types.Row) error {
	line, err := w.serde.Serialize(row)
	if err != nil {
		return err
	}
	w.buf.Write(line)
	w.buf.WriteByte('\n')
	if w.buf.Len() >= 1<<20 {
		return w.flush()
	}
	return nil
}

func (w *textWriter) flush() error {
	if w.buf.Len() == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf.Bytes())
	w.buf.Reset()
	return err
}

func (w *textWriter) Close() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Close()
}

type textReader struct {
	scanner *bufio.Scanner
	serde   serde.TextSerDe
	proj    projection
}

func newTextReader(f *dfs.FileReader, schema *types.Schema, scan ScanOptions) (Reader, error) {
	proj, err := newProjection(schema, scan.Include)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	return &textReader{
		scanner: sc,
		serde:   serde.TextSerDe{Schema: schema},
		proj:    proj,
	}, nil
}

func (r *textReader) Next() (types.Row, error) {
	if !r.scanner.Scan() {
		if err := r.scanner.Err(); err != nil && err != io.EOF {
			return nil, err
		}
		return nil, io.EOF
	}
	row, err := r.serde.Deserialize(r.scanner.Bytes())
	if err != nil {
		return nil, err
	}
	return r.proj.apply(row), nil
}

func (r *textReader) Close() error { return nil }
