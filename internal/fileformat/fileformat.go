// Package fileformat defines the common interface over Hive's file formats
// and a registry keyed by format kind. The concrete formats live in
// subpackages (textfile, seqfile, rcfile) and in internal/orc; this package
// wires them behind one Create/Open API so the execution engine and the
// benchmark harness can swap formats per table, as the paper's evaluation
// does (§7.2).
package fileformat

import (
	"context"
	"fmt"

	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/orc"
	"repro/internal/stats"
	"repro/internal/types"
)

// Kind identifies a file format.
type Kind int

// Supported formats, in the order the paper introduces them (§3, §4).
const (
	Text Kind = iota
	Sequence
	RC
	ORC
)

// String returns the format name used in table DDL.
func (k Kind) String() string {
	switch k {
	case Text:
		return "TEXTFILE"
	case Sequence:
		return "SEQUENCEFILE"
	case RC:
		return "RCFILE"
	case ORC:
		return "ORC"
	}
	return fmt.Sprintf("format(%d)", int(k))
}

// ParseKind parses a format name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "TEXTFILE", "TEXT":
		return Text, nil
	case "SEQUENCEFILE", "SEQ":
		return Sequence, nil
	case "RCFILE", "RC":
		return RC, nil
	case "ORC", "ORCFILE":
		return ORC, nil
	}
	return 0, fmt.Errorf("fileformat: unknown format %q", s)
}

// Writer appends rows to one file of a table.
type Writer interface {
	Write(row types.Row) error
	Close() error
}

// Reader iterates rows of one file; Next returns io.EOF at the end.
type Reader interface {
	Next() (types.Row, error)
	Close() error
}

// Options configures writers.
type Options struct {
	// Compression selects the general-purpose codec (where supported).
	Compression compress.Kind
	// ORCOptions forwards ORC-specific knobs; nil uses defaults.
	ORCOptions *orc.WriterOptions
}

// ScanOptions configures readers. Formats without projection or predicate
// pushdown support ignore the fields they cannot honor, exactly as the
// paper describes for RCFile (§3's second shortcoming).
type ScanOptions struct {
	// Include lists top-level columns to materialize in output order;
	// nil means all columns.
	Include []string
	// SArg is honored only by ORC.
	SArg *orc.SearchArgument
	// ORCCaches, when set, lets ORC readers serve chunks and metadata from
	// an LLAP-style cache, keyed by the file's DFS path; other formats
	// ignore it.
	ORCCaches *orc.Caches
	// Ctx, when set, cancels the underlying DFS reads: a cancelled query
	// stops mid-file instead of finishing the scan.
	Ctx context.Context
	// Node is the datanode the reading task runs on, for the DFS's
	// locality accounting.
	Node int
	// Tally, when set, attributes the scan's I/O (DFS bytes via the file
	// reader, cache bytes via ORC) to one consumer for per-operator
	// profiles and trace spans.
	Tally *obs.IOTally
}

// Create opens a writer for a new file at path.
func Create(fs *dfs.FS, path string, schema *types.Schema, kind Kind, opts *Options) (Writer, error) {
	return CreateCtx(fs, path, schema, kind, opts, nil)
}

// CreateCtx is Create with a context: the underlying DFS writer adopts the
// context's per-query stats scope (dfs.WithStatsScope), so a query's
// temp-file writes are attributed to that query and not only to the global
// counters. A nil context behaves exactly like Create.
func CreateCtx(fs *dfs.FS, path string, schema *types.Schema, kind Kind, opts *Options, ctx context.Context) (Writer, error) {
	if opts == nil {
		opts = &Options{}
	}
	fw, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		fw.SetContext(ctx)
	}
	switch kind {
	case Text:
		return newTextWriter(fw, schema, opts)
	case Sequence:
		return newSeqWriter(fw, schema, opts)
	case RC:
		return newRCWriter(fw, schema, opts)
	case ORC:
		o := opts.ORCOptions
		if o == nil {
			o = &orc.WriterOptions{}
		}
		oc := *o
		if oc.Compression == compress.None {
			oc.Compression = opts.Compression
		}
		if oc.BlockAlign && oc.BlockSize == 0 {
			oc.BlockSize = fs.BlockSize()
		}
		w, err := orc.NewWriter(fw, schema, &oc)
		if err != nil {
			return nil, err
		}
		return &orcWriterAdapter{w: w, f: fw}, nil
	}
	return nil, fmt.Errorf("fileformat: unknown kind %d", int(kind))
}

// Open opens a reader over an existing file. For Text, Sequence and RC the
// schema must be supplied (the formats are data-type-agnostic and carry no
// schema); ORC is self-describing and ignores the argument.
func Open(fs *dfs.FS, path string, schema *types.Schema, kind Kind, scan ScanOptions) (Reader, error) {
	fr, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	fr.SetNode(scan.Node)
	if scan.Ctx != nil {
		fr.SetContext(scan.Ctx)
	}
	// Tee the per-operator tally into the context's per-query tally (if
	// any) so cache hits and bytes stay attributable per query even when
	// several queries share the caches concurrently.
	scan.Tally = obs.TeeTally(scan.Tally, obs.QueryTallyFrom(scan.Ctx))
	fr.SetTally(scan.Tally)
	switch kind {
	case Text:
		return newTextReader(fr, schema, scan)
	case Sequence:
		return newSeqReader(fr, schema, scan)
	case RC:
		return newRCReader(fr, schema, scan)
	case ORC:
		r, err := orc.NewCachedReader(fr, path, scan.ORCCaches)
		if err != nil {
			return nil, err
		}
		rr, err := r.Rows(orc.ReadOptions{Include: scan.Include, SArg: scan.SArg, Tally: scan.Tally})
		if err != nil {
			return nil, err
		}
		return &orcReaderAdapter{rr: rr}, nil
	}
	return nil, fmt.Errorf("fileformat: unknown kind %d", int(kind))
}

type orcWriterAdapter struct {
	w *orc.Writer
	f *dfs.FileWriter
}

func (a *orcWriterAdapter) Write(row types.Row) error { return a.w.Write(row) }

func (a *orcWriterAdapter) Close() error {
	if err := a.w.Close(); err != nil {
		return err
	}
	return a.f.Close()
}

// FileStatistics exposes the ORC writer's catalog statistics (see
// FileStatsSource). Valid only after Close.
func (a *orcWriterAdapter) FileStatistics() *stats.FileStats { return a.w.FileStatistics() }

// FileStatsSource is implemented by writers that collect catalog-level
// column statistics while writing (ORC); stats-recording callers
// type-assert for it after Close. Formats without statistics simply don't
// implement it, and the table's stats coverage stays incomplete — the
// optimizer then falls back to heuristics.
type FileStatsSource interface {
	FileStatistics() *stats.FileStats
}

type orcReaderAdapter struct {
	rr *orc.RowReader
}

func (a *orcReaderAdapter) Next() (types.Row, error) { return a.rr.Next() }
func (a *orcReaderAdapter) Close() error             { return nil }

// ScanCounters exposes the ORC scan's skip accounting (see
// ScanCounterSource).
func (a *orcReaderAdapter) ScanCounters() orc.ScanCounters { return a.rr.Counters() }

// ScanCounterSource is implemented by readers that track stripe /
// index-group selection (ORC); profiling callers type-assert for it.
type ScanCounterSource interface {
	ScanCounters() orc.ScanCounters
}

// projection maps included column names to indexes once per reader.
type projection struct {
	indexes []int // nil means identity (all columns)
}

func newProjection(schema *types.Schema, include []string) (projection, error) {
	if include == nil {
		return projection{}, nil
	}
	p := projection{indexes: make([]int, len(include))}
	for i, name := range include {
		idx := schema.ColumnIndex(name)
		if idx < 0 {
			return projection{}, fmt.Errorf("fileformat: unknown column %q", name)
		}
		p.indexes[i] = idx
	}
	return p, nil
}

// apply narrows a full-width row to the projection.
func (p projection) apply(row types.Row) types.Row {
	if p.indexes == nil {
		return row
	}
	out := make(types.Row, len(p.indexes))
	for i, idx := range p.indexes {
		out[i] = row[idx]
	}
	return out
}
