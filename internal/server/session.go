// session.go: one client's stateful handle on the server. A session owns a
// private configuration snapshot (engine, optimizer toggles) and a resource
// pool binding; its queries go through workload-manager admission and run
// on the shared driver under the session's configuration, labeled with the
// session id as the LLAP tenant so daemon workers are shared fairly.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/llap"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sysdb"
)

// Session is one client's handle. Safe for concurrent use; one session may
// even run several queries at once (each is admitted separately).
type Session struct {
	id  string
	srv *Server

	mu      sync.Mutex
	conf    core.Config
	pool    string
	closed  bool
	streams map[*Stream]struct{} // open streaming-insert handles

	queries   atomic.Int64 // completed successfully
	preempted atomic.Int64 // preemptions absorbed (each later requeued)
}

// ID returns the session id ("s1", "s2", ...).
func (s *Session) ID() string { return s.id }

// Pool returns the session's resource pool.
func (s *Session) Pool() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

// SetPool rebinds the session to another pool (the REPL's \pool command).
func (s *Session) SetPool(name string) error {
	if _, ok := s.srv.wm.Pool(name); !ok {
		return fmt.Errorf("%w: %q", ErrNoPool, name)
	}
	s.mu.Lock()
	s.pool = name
	s.mu.Unlock()
	return nil
}

// Config returns a copy of the session's configuration.
func (s *Session) Config() core.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conf
}

// SetConfig replaces the session's configuration. Queries already running
// keep the snapshot they started with; the driver and other sessions are
// unaffected.
func (s *Session) SetConfig(conf core.Config) {
	s.mu.Lock()
	s.conf = conf
	s.mu.Unlock()
}

// Queries returns how many queries the session completed successfully.
func (s *Session) Queries() int64 { return s.queries.Load() }

// Preemptions returns how many times the session's queries were preempted
// (each preemption was followed by a requeue).
func (s *Session) Preemptions() int64 { return s.preempted.Load() }

// Run executes one query under the session's configuration, going through
// workload-manager admission first. A preempted query transparently
// re-enters admission (up to the pool's MaxRequeues; the final attempt
// runs unpreemptable), so callers only ever see real results or real
// errors — never ErrPreempted.
func (s *Session) Run(ctx context.Context, query string) (*core.Result, error) {
	res, _, _, err := s.run(ctx, query, false)
	return res, err
}

// RunProfiled is Run returning the optimized plan and per-operator profile
// as well (the REPL's \profile path).
func (s *Session) RunProfiled(ctx context.Context, query string) (*core.Result, *plan.Plan, *obs.PlanProfile, error) {
	return s.run(ctx, query, true)
}

func (s *Session) run(ctx context.Context, query string, profiled bool) (*core.Result, *plan.Plan, *obs.PlanProfile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, nil, ErrClosed
	}
	conf := s.conf
	poolName := s.pool
	s.mu.Unlock()

	d := s.srv.driver
	pc, ok := s.srv.wm.Pool(poolName)
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrNoPool, poolName)
	}
	mem := d.EstimateScanBytes(query)
	for attempt := 0; ; attempt++ {
		preemptable := pc.Preemptable && attempt < pc.MaxRequeues
		t, err := s.srv.wm.Acquire(ctx, poolName, mem, preemptable)
		if err != nil {
			return nil, nil, nil, err
		}
		qctx, cancel := context.WithCancelCause(llap.WithTenant(ctx, s.id))
		t.SetCancel(cancel)
		// Label the query's history record with who ran it and what it
		// cost to admit; Classify turns a workload-manager preemption —
		// indistinguishable from a plain cancellation inside the driver —
		// into state "preempted" (each preempted attempt is its own
		// record; the requeued attempt finishes as "ok").
		qctx = sysdb.WithMeta(qctx, sysdb.Meta{
			Session:     s.id,
			Pool:        poolName,
			Tenant:      s.id,
			QueueWait:   t.Wait(),
			Preemptions: s.preempted.Load(),
			Classify: func(err, cause error) string {
				if errors.Is(cause, ErrPreempted) {
					return "preempted"
				}
				return ""
			},
		})
		var (
			res  *core.Result
			p    *plan.Plan
			prof *obs.PlanProfile
		)
		if profiled {
			res, p, prof, err = d.RunProfiledWith(qctx, conf, query)
		} else {
			res, err = d.RunWith(qctx, conf, query)
		}
		t.Release()
		wasPreempted := errors.Is(context.Cause(qctx), ErrPreempted)
		cancel(nil)
		if err == nil {
			s.queries.Add(1)
			return res, p, prof, nil
		}
		if wasPreempted && ctx.Err() == nil {
			s.preempted.Add(1)
			continue // cancel-and-requeue: back through admission
		}
		return nil, nil, nil, err
	}
}

// Close ends the session. Queries already admitted finish; new Runs reject
// with ErrClosed. Open streaming inserts are abandoned: their uncommitted
// tail transactions abort, exactly as if the client had crashed, so no
// partially-streamed batch ever becomes visible.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	streams := make([]*Stream, 0, len(s.streams))
	for st := range s.streams {
		streams = append(streams, st)
	}
	s.streams = nil
	s.mu.Unlock()
	for _, st := range streams {
		st.abandon()
	}
	s.srv.dropSession(s.id)
}

func (s *Session) dropStream(st *Stream) {
	s.mu.Lock()
	delete(s.streams, st)
	s.mu.Unlock()
}
