package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSlotsCapConcurrency: a pool never runs more queries than its Slots.
func TestSlotsCapConcurrency(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p", Slots: 2, QueueDepth: 16}}}, nil)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := m.Acquire(context.Background(), "p", 0, false)
			if err != nil {
				t.Error(err)
				return
			}
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			running.Add(-1)
			tk.Release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d, want <= 2", got)
	}
	st := m.Stats()[0]
	if st.Admitted != 8 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("final stats %+v, want 8 admitted, all drained", st)
	}
}

// TestGlobalSlots: TotalSlots constrains across pools even when each pool
// has its own headroom.
func TestGlobalSlots(t *testing.T) {
	m := NewManager(ManagerConfig{
		TotalSlots: 2,
		Pools:      []PoolConfig{{Name: "a", Slots: 2}, {Name: "b", Slots: 2}},
	}, nil)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		pool := "a"
		if i%2 == 1 {
			pool = "b"
		}
		wg.Add(1)
		go func(pool string) {
			defer wg.Done()
			tk, err := m.Acquire(context.Background(), pool, 0, false)
			if err != nil {
				t.Error(err)
				return
			}
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			tk.Release()
		}(pool)
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak global concurrency %d, want <= 2", got)
	}
}

// TestQueueFullRejects: past QueueDepth waiting queries, Acquire rejects.
func TestQueueFullRejects(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p", Slots: 1, QueueDepth: 1}}}, nil)
	t1, err := m.Acquire(context.Background(), "p", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tk, err := m.Acquire(context.Background(), "p", 0, false)
		if err == nil {
			tk.Release()
		}
		done <- err
	}()
	waitFor(t, func() bool { return m.Stats()[0].Queued == 1 })
	if _, err := m.Acquire(context.Background(), "p", 0, false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: got %v, want ErrQueueFull", err)
	}
	t1.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if st := m.Stats()[0]; st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

// TestQueueTimeout: a queued query rejects with ErrQueueTimeout after the
// pool's QueueTimeout.
func TestQueueTimeout(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{
		{Name: "p", Slots: 1, QueueTimeout: 20 * time.Millisecond},
	}}, nil)
	t1, err := m.Acquire(context.Background(), "p", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Release()
	if _, err := m.Acquire(context.Background(), "p", 0, false); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("got %v, want ErrQueueTimeout", err)
	}
	st := m.Stats()[0]
	if st.TimedOut != 1 || st.Queued != 0 {
		t.Fatalf("stats %+v, want 1 timed out, empty queue", st)
	}
}

// TestCancelWhileQueued: a caller whose context dies while queued gets
// ctx.Err() and leaves the queue.
func TestCancelWhileQueued(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p", Slots: 1}}}, nil)
	t1, err := m.Acquire(context.Background(), "p", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Acquire(ctx, "p", 0, false)
		done <- err
	}()
	waitFor(t, func() bool { return m.Stats()[0].Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := m.Stats()[0]; st.Queued != 0 {
		t.Fatalf("queued = %d after cancel, want 0", st.Queued)
	}
}

// TestMemoryAdmission: the pool's memory budget serializes queries whose
// summed estimates exceed it, and rejects a single query that could never
// fit.
func TestMemoryAdmission(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{
		{Name: "p", Slots: 4, MemoryBytes: 100},
	}}, nil)
	if _, err := m.Acquire(context.Background(), "p", 150, false); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("oversized query: got %v, want ErrMemoryExceeded", err)
	}
	t1, err := m.Acquire(context.Background(), "p", 60, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tk, err := m.Acquire(context.Background(), "p", 60, false)
		if err == nil {
			tk.Release()
		}
		done <- err
	}()
	waitFor(t, func() bool { return m.Stats()[0].Queued == 1 })
	if st := m.Stats()[0]; st.Running != 1 || st.MemUsed != 60 {
		t.Fatalf("stats %+v, want second 60-byte query queued behind the first", st)
	}
	t1.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPreemption: an interactive query starved of a global slot preempts
// the longest-running preemptable batch query; the batch ticket's context
// is cancelled with cause ErrPreempted and the interactive query is
// granted the freed slot.
func TestPreemption(t *testing.T) {
	m := NewManager(ManagerConfig{
		TotalSlots: 1,
		Pools: []PoolConfig{
			{Name: "batch", Slots: 1, Preemptable: true},
			{Name: "inter", Slots: 1, Interactive: true},
		},
	}, nil)
	bt, err := m.Acquire(context.Background(), "batch", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	bctx, bcancel := context.WithCancelCause(context.Background())
	bt.SetCancel(bcancel)

	granted := make(chan *Ticket, 1)
	go func() {
		tk, err := m.Acquire(context.Background(), "inter", 0, false)
		if err != nil {
			t.Error(err)
		}
		granted <- tk
	}()

	select {
	case <-bctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("batch query was not preempted")
	}
	if cause := context.Cause(bctx); !errors.Is(cause, ErrPreempted) {
		t.Fatalf("cancellation cause = %v, want ErrPreempted", cause)
	}
	if !bt.Preempted() {
		t.Fatal("ticket not marked preempted")
	}
	// The victim unwinds and releases; the interactive query gets the slot.
	bt.Release()
	select {
	case tk := <-granted:
		tk.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("interactive query not granted after preemption")
	}
	for _, st := range m.Stats() {
		if st.Name == "batch" && st.Preempted != 1 {
			t.Fatalf("batch preempted = %d, want 1", st.Preempted)
		}
	}
}

// TestNoPreemptionWhenUnpreemptable: a ticket acquired with
// preemptable=false is never chosen as a victim — the interactive query
// must wait for it.
func TestNoPreemptionWhenUnpreemptable(t *testing.T) {
	m := NewManager(ManagerConfig{
		TotalSlots: 1,
		Pools: []PoolConfig{
			{Name: "batch", Slots: 1, Preemptable: true},
			{Name: "inter", Slots: 1, Interactive: true},
		},
	}, nil)
	// Final-attempt semantics: the pool is preemptable but this ticket
	// (attempt >= MaxRequeues) is not.
	bt, err := m.Acquire(context.Background(), "batch", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	bctx, bcancel := context.WithCancelCause(context.Background())
	bt.SetCancel(bcancel)
	defer bcancel(nil)

	granted := make(chan *Ticket, 1)
	go func() {
		tk, err := m.Acquire(context.Background(), "inter", 0, false)
		if err != nil {
			t.Error(err)
		}
		granted <- tk
	}()
	waitFor(t, func() bool {
		for _, st := range m.Stats() {
			if st.Name == "inter" && st.Queued == 1 {
				return true
			}
		}
		return false
	})
	if bctx.Err() != nil {
		t.Fatal("unpreemptable ticket was cancelled")
	}
	bt.Release()
	tk := <-granted
	tk.Release()
}

// TestCloseRejectsQueued: Close fails queued acquires with ErrClosed and
// refuses new ones; running tickets still release cleanly.
func TestCloseRejectsQueued(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p", Slots: 1}}}, nil)
	t1, err := m.Acquire(context.Background(), "p", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Acquire(context.Background(), "p", 0, false)
		done <- err
	}()
	waitFor(t, func() bool { return m.Stats()[0].Queued == 1 })
	m.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued acquire after close: got %v, want ErrClosed", err)
	}
	if _, err := m.Acquire(context.Background(), "p", 0, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("new acquire after close: got %v, want ErrClosed", err)
	}
	t1.Release()
}

// TestUnknownPool: acquiring from an unconfigured pool rejects.
func TestUnknownPool(t *testing.T) {
	m := NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p"}}}, nil)
	if _, err := m.Acquire(context.Background(), "nope", 0, false); !errors.Is(err, ErrNoPool) {
		t.Fatalf("got %v, want ErrNoPool", err)
	}
}

// TestPoolMetrics: with a registry, the manager exposes per-pool gauges,
// counters and histograms under "wm.<pool>.", and RemovePrefix clears them
// so a rebuilt manager can re-register.
func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p", Slots: 1}}}, reg)
	tk, err := m.Acquire(context.Background(), "p", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Get("wm.p.Running"); got != 1 {
		t.Fatalf("wm.p.Running = %d, want 1", got)
	}
	if got := snap.Get("wm.p.Admitted"); got != 1 {
		t.Fatalf("wm.p.Admitted = %d, want 1", got)
	}
	tk.Release()
	snap = reg.Snapshot()
	if got := snap.Get("wm.p.Running"); got != 0 {
		t.Fatalf("wm.p.Running after release = %d, want 0", got)
	}
	if got := snap.Hist("wm.p.QueryNanos").Count; got != 1 {
		t.Fatalf("wm.p.QueryNanos count = %d, want 1", got)
	}
	reg.RemovePrefix("wm.")
	// Re-registering the same pool names must not panic.
	NewManager(ManagerConfig{Pools: []PoolConfig{{Name: "p", Slots: 1}}}, reg)
}

// waitFor polls cond until true or a 5s deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
