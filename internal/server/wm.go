// Package server is the multi-tenant front end over one core.Driver — the
// HiveServer2 + workload-management layer of the paper's outlook, in
// process. It has three parts: sessions (session.go), each with a private
// configuration snapshot and a default resource pool; a query gateway
// (server.go) dispatching per-session queries through the shared driver
// concurrently; and this file's workload manager — named resource pools
// with executor-slot budgets, bounded admission queues with queue
// timeouts, memory-based admission keyed on estimated scan footprint, and
// preemption (cancel-and-requeue) of batch queries when an interactive
// pool is starved of global capacity.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Admission-control errors.
var (
	// ErrPreempted is the cancellation cause installed on a running query
	// the manager preempts to make room for a starved interactive pool.
	// Sessions detect it via context.Cause and requeue the query.
	ErrPreempted = errors.New("server: preempted by workload manager")
	// ErrQueueFull rejects a query whose pool's admission queue is at
	// capacity.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrQueueTimeout rejects a query that waited longer than the pool's
	// queue timeout without being granted a slot.
	ErrQueueTimeout = errors.New("server: admission queue timeout")
	// ErrMemoryExceeded rejects a query whose estimated scan footprint
	// exceeds its pool's entire memory budget: it could never be admitted.
	ErrMemoryExceeded = errors.New("server: query exceeds pool memory budget")
	// ErrNoPool rejects work naming an unconfigured resource pool.
	ErrNoPool = errors.New("server: no such resource pool")
	// ErrClosed rejects work on a closed manager, server or session.
	ErrClosed = errors.New("server: closed")
)

// PoolConfig sizes one named resource pool.
type PoolConfig struct {
	Name string
	// Slots caps the pool's concurrently running queries. Default 4.
	Slots int
	// QueueDepth bounds queries waiting for admission beyond the running
	// ones; Acquire rejects with ErrQueueFull past it. Default 16.
	QueueDepth int
	// QueueTimeout bounds how long a query waits for admission; rejected
	// with ErrQueueTimeout after it. 0 waits until the caller's context
	// expires.
	QueueTimeout time.Duration
	// MemoryBytes is the pool's admission memory budget: the summed
	// estimated scan footprints of admitted queries stay within it. 0 is
	// unlimited. A single query estimated over the whole budget is
	// rejected outright with ErrMemoryExceeded.
	MemoryBytes int64
	// Interactive marks a latency-sensitive pool: when its head-of-queue
	// query is blocked only by the global slot budget, the manager
	// preempts the longest-running preemptable query to make room.
	Interactive bool
	// Preemptable marks a batch pool whose running queries may be
	// cancelled and requeued to unblock a starved interactive pool.
	Preemptable bool
	// MaxRequeues is how many times a preempted query re-enters admission
	// before its final attempt runs unpreemptable. Default 2.
	MaxRequeues int
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.MaxRequeues == 0 {
		c.MaxRequeues = 2
	}
	return c
}

// ManagerConfig sizes the workload manager.
type ManagerConfig struct {
	// TotalSlots is the global executor-slot budget shared by every pool:
	// a query needs a free slot in its pool and a free global slot to
	// run. Default: the sum of pool slots, i.e. no constraint beyond the
	// per-pool ones. Setting it lower models pools oversubscribing shared
	// executors — the situation preemption exists for.
	TotalSlots int
	Pools      []PoolConfig
}

// Manager is the workload manager: admission control over named resource
// pools. Safe for concurrent use.
type Manager struct {
	mu         sync.Mutex
	pools      map[string]*pool
	order      []*pool // dispatch order: interactive pools first
	first      string  // first configured pool; the default for sessions
	totalSlots int
	running    int
	closed     bool
}

type pool struct {
	cfg     PoolConfig
	queue   []*Ticket
	running map[*Ticket]struct{}
	memUsed int64
	// Lifetime counters, under Manager.mu.
	admitted, rejected, timedOut, preempted int64
	// Registry mirrors; nil (and nil-safe) without a registry.
	gRunning, gQueued                *obs.Gauge
	cAdmitted, cRejected, cPreempted *obs.Counter
	cTimedOut                        *obs.Counter
	hWait, hRun                      *obs.Histogram
}

// Ticket is one admitted (or queued) query's claim on pool resources.
type Ticket struct {
	m           *Manager
	pool        *pool
	mem         int64
	preemptable bool
	grant       chan error // buffered 1: nil on admission, error on rejection
	enqueued    time.Time
	start       time.Time               // admission time; zero while queued
	granted     bool                    // under Manager.mu
	released    bool                    // under Manager.mu
	preempted   bool                    // under Manager.mu
	cancel      context.CancelCauseFunc // under Manager.mu
}

// NewManager builds the pools. With a non-nil registry, each pool registers
// gauges, counters and latency histograms under "wm.<pool>."; tear them
// down with reg.RemovePrefix("wm.") when discarding the manager.
func NewManager(cfg ManagerConfig, reg *obs.Registry) *Manager {
	m := &Manager{pools: map[string]*pool{}}
	for _, pc := range cfg.Pools {
		pc = pc.withDefaults()
		if _, dup := m.pools[pc.Name]; dup {
			panic(fmt.Sprintf("server: duplicate pool %q", pc.Name))
		}
		p := &pool{cfg: pc, running: map[*Ticket]struct{}{}}
		if reg != nil {
			prefix := "wm." + pc.Name + "."
			p.gRunning = reg.Gauge(prefix + "Running")
			p.gQueued = reg.Gauge(prefix + "Queued")
			p.cAdmitted = reg.Counter(prefix + "Admitted")
			p.cRejected = reg.Counter(prefix + "Rejected")
			p.cTimedOut = reg.Counter(prefix + "TimedOut")
			p.cPreempted = reg.Counter(prefix + "Preempted")
			p.hWait = reg.Histogram(prefix + "WaitNanos")
			p.hRun = reg.Histogram(prefix + "QueryNanos")
		}
		if m.first == "" {
			m.first = pc.Name
		}
		m.pools[pc.Name] = p
		m.order = append(m.order, p)
		m.totalSlots += pc.Slots
	}
	if cfg.TotalSlots > 0 {
		m.totalSlots = cfg.TotalSlots
	}
	sort.SliceStable(m.order, func(i, j int) bool {
		return m.order[i].cfg.Interactive && !m.order[j].cfg.Interactive
	})
	return m
}

// DefaultPool names the first configured pool — the pool sessions start in.
func (m *Manager) DefaultPool() string { return m.first }

// Pool returns a pool's effective (default-filled) configuration.
func (m *Manager) Pool(name string) (PoolConfig, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[name]
	if !ok {
		return PoolConfig{}, false
	}
	return p.cfg, true
}

// Acquire admits one query into the named pool, waiting in the pool's
// bounded queue when no slot (or memory) is free. mem is the query's
// estimated memory footprint (Driver.EstimateScanBytes). preemptable marks
// the resulting ticket as a legal preemption victim; it only takes effect
// in pools configured Preemptable. The returned Ticket must be Released.
func (m *Manager) Acquire(ctx context.Context, poolName string, mem int64, preemptable bool) (*Ticket, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	p, ok := m.pools[poolName]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoPool, poolName)
	}
	if p.cfg.MemoryBytes > 0 && mem > p.cfg.MemoryBytes {
		p.rejected++
		p.cRejected.Inc()
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: estimated %d bytes, pool %q budget %d",
			ErrMemoryExceeded, mem, poolName, p.cfg.MemoryBytes)
	}
	t := &Ticket{
		m: m, pool: p, mem: mem,
		preemptable: preemptable && p.cfg.Preemptable,
		grant:       make(chan error, 1),
		enqueued:    time.Now(),
	}
	if m.canRunLocked(p, mem) {
		m.grantLocked(p, t)
		m.mu.Unlock()
		<-t.grant
		return t, nil
	}
	if len(p.queue) >= p.cfg.QueueDepth {
		p.rejected++
		p.cRejected.Inc()
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: pool %q depth %d", ErrQueueFull, poolName, p.cfg.QueueDepth)
	}
	p.queue = append(p.queue, t)
	p.gQueued.Set(int64(len(p.queue)))
	if p.cfg.Interactive {
		m.preemptForLocked(p)
	}
	m.mu.Unlock()

	var timeout <-chan time.Time
	if p.cfg.QueueTimeout > 0 {
		timer := time.NewTimer(p.cfg.QueueTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case err := <-t.grant:
		if err != nil {
			return nil, err
		}
		return t, nil
	case <-ctx.Done():
		return nil, m.abandon(t, ctx.Err(), false)
	case <-timeout:
		return nil, m.abandon(t, fmt.Errorf("%w: pool %q after %v",
			ErrQueueTimeout, poolName, p.cfg.QueueTimeout), true)
	}
}

// abandon removes a waiting ticket after a timeout or caller cancellation,
// returning cause. When the grant raced in first, the slot goes straight
// back and freed capacity is re-dispatched.
func (m *Manager) abandon(t *Ticket, cause error, timedOut bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := t.pool
	if t.granted {
		m.releaseLocked(t)
		m.dispatchLocked()
		return cause
	}
	for i, q := range p.queue {
		if q == t {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			break
		}
	}
	p.gQueued.Set(int64(len(p.queue)))
	p.rejected++
	p.cRejected.Inc()
	if timedOut {
		p.timedOut++
		p.cTimedOut.Inc()
	}
	return cause
}

// canRunLocked reports whether the pool can admit a query of footprint mem
// right now: a pool slot, a global slot, and memory budget headroom.
func (m *Manager) canRunLocked(p *pool, mem int64) bool {
	if len(p.running) >= p.cfg.Slots || m.running >= m.totalSlots {
		return false
	}
	if p.cfg.MemoryBytes > 0 && p.memUsed+mem > p.cfg.MemoryBytes {
		return false
	}
	return true
}

func (m *Manager) grantLocked(p *pool, t *Ticket) {
	p.running[t] = struct{}{}
	p.memUsed += t.mem
	m.running++
	t.granted = true
	t.start = time.Now()
	p.admitted++
	p.cAdmitted.Inc()
	p.gRunning.Set(int64(len(p.running)))
	p.hWait.ObserveDuration(t.start.Sub(t.enqueued))
	t.grant <- nil
}

func (m *Manager) releaseLocked(t *Ticket) {
	t.released = true
	t.cancel = nil
	p := t.pool
	delete(p.running, t)
	p.memUsed -= t.mem
	m.running--
	p.gRunning.Set(int64(len(p.running)))
	p.hRun.ObserveDuration(time.Since(t.start))
}

// dispatchLocked grants every queued ticket that can now run, interactive
// pools first, FIFO within a pool, until no further grant is possible.
func (m *Manager) dispatchLocked() {
	for progressed := true; progressed; {
		progressed = false
		for _, p := range m.order {
			for len(p.queue) > 0 && m.canRunLocked(p, p.queue[0].mem) {
				t := p.queue[0]
				p.queue = p.queue[1:]
				p.gQueued.Set(int64(len(p.queue)))
				m.grantLocked(p, t)
				progressed = true
			}
		}
	}
}

// preemptForLocked fires when interactive pool p has a head-of-queue query
// that could run but for the global slot budget: the longest-running
// preemptable query in another pool is cancelled with cause ErrPreempted.
// Its session observes the cause and requeues it — work deferred, not
// lost — and the slot it frees is dispatched interactive-first.
func (m *Manager) preemptForLocked(p *pool) {
	if len(p.queue) == 0 || m.running < m.totalSlots {
		return
	}
	head := p.queue[0]
	if len(p.running) >= p.cfg.Slots {
		return // blocked on its own pool slots; preemption can't help
	}
	if p.cfg.MemoryBytes > 0 && p.memUsed+head.mem > p.cfg.MemoryBytes {
		return // blocked on its own memory budget; preemption can't help
	}
	var victim *Ticket
	for _, vp := range m.order {
		if vp == p || !vp.cfg.Preemptable {
			continue
		}
		for t := range vp.running {
			if !t.preemptable || t.preempted || t.cancel == nil {
				continue
			}
			if victim == nil || t.start.Before(victim.start) {
				victim = t
			}
		}
	}
	if victim == nil {
		return
	}
	victim.preempted = true
	victim.pool.preempted++
	victim.pool.cPreempted.Inc()
	victim.cancel(ErrPreempted)
}

// SetCancel installs the running query's cancel function so the manager
// can preempt it: call it with the context.CancelCauseFunc wrapping the
// query's context, between Acquire and running the query.
func (t *Ticket) SetCancel(cancel context.CancelCauseFunc) {
	t.m.mu.Lock()
	t.cancel = cancel
	t.m.mu.Unlock()
}

// Preempted reports whether the manager preempted this ticket.
func (t *Ticket) Preempted() bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.preempted
}

// Wait returns how long the ticket sat in the admission queue before its
// grant — the queue_ms column of the query-history record.
func (t *Ticket) Wait() time.Duration {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.start.IsZero() {
		return time.Since(t.enqueued)
	}
	return t.start.Sub(t.enqueued)
}

// Alive reports whether the manager accepts Acquires (the admin plane's
// readiness probe).
func (m *Manager) Alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed
}

// Release returns the ticket's slot and memory to its pool and dispatches
// queued work that now fits. Idempotent.
func (t *Ticket) Release() {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.released || !t.granted {
		return
	}
	m.releaseLocked(t)
	m.dispatchLocked()
}

// Close rejects all queued tickets with ErrClosed and refuses further
// Acquires. Running queries are unaffected; their Release is still valid.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, p := range m.pools {
		for _, t := range p.queue {
			p.rejected++
			p.cRejected.Inc()
			t.grant <- ErrClosed
		}
		p.queue = nil
		p.gQueued.Set(0)
	}
}

// PoolStat is one pool's point-in-time state for displays and tests.
type PoolStat struct {
	Name        string
	Interactive bool
	Slots       int
	Running     int
	Queued      int
	MemUsed     int64
	MemBudget   int64
	Admitted    int64
	Rejected    int64
	TimedOut    int64
	Preempted   int64
}

// Stats reports every pool in dispatch order (interactive first).
func (m *Manager) Stats() []PoolStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PoolStat, 0, len(m.order))
	for _, p := range m.order {
		out = append(out, PoolStat{
			Name:        p.cfg.Name,
			Interactive: p.cfg.Interactive,
			Slots:       p.cfg.Slots,
			Running:     len(p.running),
			Queued:      len(p.queue),
			MemUsed:     p.memUsed,
			MemBudget:   p.cfg.MemoryBytes,
			Admitted:    p.admitted,
			Rejected:    p.rejected,
			TimedOut:    p.timedOut,
			Preempted:   p.preempted,
		})
	}
	return out
}
