package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sysdb"
)

// get issues one request against the admin mux and returns status + body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestAdminPlane drives every endpoint of the HTTP admin plane against a
// live server: /metrics exposition with wm gauges (present while open,
// gone after Close), /debug/queries JSON, /debug/trace for a captured
// slow query, and /healthz + /readyz flipping to 503 on shutdown.
func TestAdminPlane(t *testing.T) {
	d := newTestDriver(t, core.Config{
		Engine: core.ModeLLAP,
		History: sysdb.Config{
			SlowBytes: 256, // everything over the sales table is "slow"
			SlowWall:  -1,
		},
	})
	defer d.Close()
	srv := New(d, ManagerConfig{Pools: []PoolConfig{
		{Name: "interactive", Interactive: true, Slots: 2, QueueDepth: 8},
		{Name: "batch", Slots: 2, QueueDepth: 8},
	}})
	h := srv.Handler()

	sess, err := srv.OpenSession("interactive")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), "SELECT item_id, SUM(qty) FROM sales GROUP BY item_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}

	// Health while open.
	if code, body := get(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, h, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	// /metrics: well-formed exposition with wm pool gauges and the
	// interpolated query-latency quantiles.
	code, body := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE hive_wm_interactive_admitted counter",
		"hive_wm_interactive_admitted 1",
		"hive_core_query_nanos_p99",
		"hive_core_query_nanos_count 1",
		"le=\"+Inf\"",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/queries: the finished query shows up with its session/pool.
	code, body = get(t, h, "/debug/queries")
	if code != 200 {
		t.Fatalf("/debug/queries = %d", code)
	}
	var dq struct {
		Total    int64             `json:"total"`
		Queries  []json.RawMessage `json:"queries"`
		Captures []int64           `json:"captures"`
	}
	if err := json.Unmarshal([]byte(body), &dq); err != nil {
		t.Fatalf("/debug/queries not JSON: %v\n%s", err, body)
	}
	if dq.Total < 1 || len(dq.Queries) < 1 {
		t.Fatalf("/debug/queries total=%d queries=%d, want >=1", dq.Total, len(dq.Queries))
	}
	var rec sysdb.QueryRecord
	if err := json.Unmarshal(dq.Queries[len(dq.Queries)-1], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Session != sess.ID() || rec.Pool != "interactive" || rec.State != "ok" {
		t.Fatalf("record = %+v, want session %s pool interactive state ok", rec, sess.ID())
	}
	if len(dq.Captures) == 0 {
		t.Fatal("no captures despite SlowBytes threshold")
	}

	// /debug/trace/<qid>: a Chrome trace for the captured slow query.
	qid := strconv.FormatInt(dq.Captures[0], 10)
	code, body = get(t, h, "/debug/trace/"+qid)
	if code != 200 {
		t.Fatalf("/debug/trace/%s = %d %s", qid, code, body)
	}
	if !strings.Contains(body, "traceEvents") || !strings.Contains(body, "\"q"+qid+"\"") {
		t.Fatalf("trace missing traceEvents/span: %.200s", body)
	}
	if code, _ := get(t, h, "/debug/trace/999999"); code != 404 {
		t.Fatalf("missing capture = %d, want 404", code)
	}
	if code, _ := get(t, h, "/debug/trace/nope"); code != 400 {
		t.Fatalf("bad id = %d, want 400", code)
	}

	// Close: wm gauges vanish from /metrics, probes flip to 503. The
	// handler itself stays valid.
	srv.Close()
	if code, body := get(t, h, "/metrics"); code != 200 || strings.Contains(body, "hive_wm_") {
		t.Fatalf("wm metrics survived Close (code %d):\n%.300s", code, body)
	}
	if code, _ := get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after close = %d, want 503", code)
	}
	if code, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after close = %d, want 503", code)
	}
}

// TestReadyzLLAPGate: readiness fails if a started LLAP daemon is closed
// underneath the server, but a never-started daemon is fine (covered in
// TestAdminPlane's pre-query probe where only the wm is up).
func TestReadyzLLAPGate(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()
	srv := New(d, ManagerConfig{})
	defer srv.Close()
	h := srv.Handler()

	if code, _ := get(t, h, "/readyz"); code != 200 {
		t.Fatalf("/readyz with no daemon = %d, want 200", code)
	}
	d.LLAP() // start it
	if code, _ := get(t, h, "/readyz"); code != 200 {
		t.Fatalf("/readyz with live daemon = %d, want 200", code)
	}
	d.LLAP().Close()
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "llap") {
		t.Fatalf("/readyz with closed daemon = %d %q, want 503 llap", code, body)
	}
}

// TestSysPoolsAndSessionsTables: the server-owned sys tables are
// queryable through a session and disappear when the server closes.
func TestSysPoolsAndSessionsTables(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()
	srv := New(d, ManagerConfig{Pools: []PoolConfig{
		{Name: "interactive", Interactive: true, Slots: 3, QueueDepth: 8},
		{Name: "batch", Slots: 5, QueueDepth: 8},
	}})

	sess, err := srv.OpenSession("batch")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), "SELECT pool, slots FROM sys.pools WHERE interactive = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "batch" || res.Rows[0][1] != int64(5) {
		t.Fatalf("sys.pools rows = %v", res.Rows)
	}
	// The querying session sees itself (queries counts completions, so the
	// in-flight sys query itself still reads 0).
	res, err = sess.Run(context.Background(), "SELECT id, pool FROM sys.sessions")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != sess.ID() || res.Rows[0][1] != "batch" {
		t.Fatalf("sys.sessions rows = %v", res.Rows)
	}

	srv.Close()
	if _, err := d.Run("SELECT pool FROM sys.pools"); err == nil {
		t.Fatal("sys.pools still queryable after server Close")
	}
}
