// http.go is the operational admin plane (S26c): an http.Handler a
// deployment mounts next to the query surface (`hive -serve -http
// :8080`). Four families of endpoints: Prometheus-text /metrics rendered
// from the driver's unified registry (cumulative power-of-two buckets
// plus interpolated p50/p99 gauges), /debug/queries (history ring + live
// queries, JSON), /debug/trace/<qid> (the Chrome trace of a captured
// slow/sampled query), and /healthz + /readyz (readiness gated on
// workload-manager and LLAP-daemon liveness).
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Handler returns the admin-plane mux. It holds no state of its own —
// every request renders live server state — so one handler stays valid
// for the server's lifetime.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	mux.HandleFunc("/debug/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.driver.Registry().Snapshot(), "hive")
}

// debugQueries is the /debug/queries payload.
type debugQueries struct {
	Total    int64             `json:"total"`
	Live     []liveJSON        `json:"live"`
	Queries  []json.RawMessage `json:"queries"`  // history records, oldest first
	Captures []int64           `json:"captures"` // qids with retrievable traces
}

type liveJSON struct {
	ID      int64  `json:"qid"`
	Query   string `json:"query"`
	Engine  string `json:"engine"`
	Session string `json:"session,omitempty"`
	Pool    string `json:"pool,omitempty"`
	Elapsed int64  `json:"elapsed_ms"`
	Traced  bool   `json:"traced"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	h := s.driver.History()
	out := debugQueries{Total: h.Total(), Captures: h.Captures()}
	for _, lq := range h.Live() {
		out.Live = append(out.Live, liveJSON{
			ID: lq.ID, Query: lq.Query, Engine: lq.Engine,
			Session: lq.Session, Pool: lq.Pool,
			Elapsed: lq.Elapsed.Milliseconds(), Traced: lq.Traced,
		})
	}
	for _, rec := range h.Records() {
		line, err := json.Marshal(&rec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out.Queries = append(out.Queries, line)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&out)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad query id", http.StatusBadRequest)
		return
	}
	cap, ok := s.driver.History().Capture(id)
	if !ok {
		http.Error(w, "no capture for query (not slow enough, not sampled, or evicted)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", "attachment; filename=\"trace-q"+idStr+".json\"")
	cap.Tracer.WriteJSON(w)
}

// handleHealthz is liveness: the server process is up and not closed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: liveness plus the workload manager accepting
// admissions and, if the LLAP daemon has been started, the daemon
// accepting work. A never-started daemon is not a readiness failure —
// MapReduce/Tez-only deployments never start one.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	switch {
	case closed:
		http.Error(w, "closed", http.StatusServiceUnavailable)
	case !s.wm.Alive():
		http.Error(w, "workload manager closed", http.StatusServiceUnavailable)
	case func() bool { d := s.driver.StartedLLAP(); return d != nil && !d.Alive() }():
		http.Error(w, "llap daemon closed", http.StatusServiceUnavailable)
	default:
		w.Write([]byte("ready\n"))
	}
}

// Serve runs the admin plane until the context is cancelled, then shuts
// it down gracefully; cmd/hive wires `-http` through it.
func Serve(ctx context.Context, srv *http.Server) error {
	go func() {
		<-ctx.Done()
		c, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(c)
	}()
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
