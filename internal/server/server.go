// server.go is the query gateway: a Server wraps one shared core.Driver
// with session management and the workload manager, so many clients run
// concurrently — each under its own configuration and resource pool —
// through a single set of engine, cache and metastore resources.
package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/sysdb"
	"repro/internal/types"
)

// Server is the multi-tenant front end over one driver. All methods are
// safe for concurrent use.
type Server struct {
	driver *core.Driver
	wm     *Manager

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int64
	closed   bool
}

// New builds a server over an existing driver. An empty pool list gets a
// single "default" pool. Per-pool metrics register into the driver's
// registry under "wm.<pool>." and are removed again by Close, so a driver
// can host servers back to back.
func New(d *core.Driver, cfg ManagerConfig) *Server {
	if len(cfg.Pools) == 0 {
		cfg.Pools = []PoolConfig{{Name: "default"}}
	}
	s := &Server{
		driver:   d,
		wm:       NewManager(cfg, d.Registry()),
		sessions: map[string]*Session{},
	}
	// The server owns pool and session state, so it registers the sys
	// tables over them; Close unregisters, mirroring the metric prefixes.
	d.RegisterSysTable(s.poolsTable())
	d.RegisterSysTable(s.sessionsTable())
	return s
}

// poolsTable exposes workload-manager pool state as sys.pools.
func (s *Server) poolsTable() sysdb.TableDef {
	return sysdb.TableDef{
		Name: "sys.pools",
		Schema: types.NewSchema(
			types.Col("pool", types.Primitive(types.String)),
			types.Col("interactive", types.Primitive(types.Long)),
			types.Col("slots", types.Primitive(types.Long)),
			types.Col("running", types.Primitive(types.Long)),
			types.Col("queued", types.Primitive(types.Long)),
			types.Col("mem_used", types.Primitive(types.Long)),
			types.Col("mem_budget", types.Primitive(types.Long)),
			types.Col("admitted", types.Primitive(types.Long)),
			types.Col("rejected", types.Primitive(types.Long)),
			types.Col("timed_out", types.Primitive(types.Long)),
			types.Col("preempted", types.Primitive(types.Long)),
		),
		Rows: func() []types.Row {
			stats := s.wm.Stats()
			rows := make([]types.Row, 0, len(stats))
			for _, ps := range stats {
				interactive := int64(0)
				if ps.Interactive {
					interactive = 1
				}
				rows = append(rows, types.Row{
					ps.Name, interactive, int64(ps.Slots), int64(ps.Running),
					int64(ps.Queued), ps.MemUsed, ps.MemBudget,
					ps.Admitted, ps.Rejected, ps.TimedOut, ps.Preempted,
				})
			}
			return rows
		},
	}
}

// sessionsTable exposes open sessions as sys.sessions.
func (s *Server) sessionsTable() sysdb.TableDef {
	return sysdb.TableDef{
		Name: "sys.sessions",
		Schema: types.NewSchema(
			types.Col("id", types.Primitive(types.String)),
			types.Col("pool", types.Primitive(types.String)),
			types.Col("engine", types.Primitive(types.String)),
			types.Col("queries", types.Primitive(types.Long)),
			types.Col("preemptions", types.Primitive(types.Long)),
		),
		Rows: func() []types.Row {
			sessions := s.Sessions()
			rows := make([]types.Row, 0, len(sessions))
			for _, sess := range sessions {
				rows = append(rows, types.Row{
					sess.ID(), sess.Pool(), sess.Config().Engine.String(),
					sess.Queries(), sess.Preemptions(),
				})
			}
			return rows
		},
	}
}

// Driver exposes the shared driver (benchmarks and the REPL read its
// registry and metastore through it).
func (s *Server) Driver() *core.Driver { return s.driver }

// Manager exposes the workload manager (pool stats, direct admission).
func (s *Server) Manager() *Manager { return s.wm }

// OpenSession starts a session in the named pool ("" means the default
// pool). The session's configuration starts as a snapshot of the driver's.
func (s *Server) OpenSession(pool string) (*Session, error) {
	if pool == "" {
		pool = s.wm.DefaultPool()
	}
	if _, ok := s.wm.Pool(pool); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPool, pool)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	sess := &Session{
		id:   fmt.Sprintf("s%d", s.nextID),
		srv:  s,
		conf: s.driver.Config(),
		pool: pool,
	}
	s.sessions[sess.id] = sess
	return sess, nil
}

// Session looks a session up by id.
func (s *Server) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Sessions lists open sessions sorted by id.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (s *Server) dropSession(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// Close closes every session, shuts the workload manager (queued queries
// reject with ErrClosed; running ones finish), and unregisters the "wm."
// metrics so a new server can be built over the same driver. The driver
// itself stays open — the server does not own it.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Close()
	}
	s.wm.Close()
	s.driver.Registry().RemovePrefix("wm.")
	s.driver.UnregisterSysTable("sys.pools")
	s.driver.UnregisterSysTable("sys.sessions")
}
