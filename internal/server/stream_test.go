package server

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
)

// newStreamServer builds a server over a driver holding one empty ACID
// table "clicks"(k Long, v Long), auto-compaction disabled.
func newStreamServer(t *testing.T) *Server {
	t.Helper()
	d := newTestDriver(t, core.Config{AutoCompactDeltas: -1})
	t.Cleanup(d.Close)
	schema := types.NewSchema(
		types.Col("k", types.Primitive(types.Long)),
		types.Col("v", types.Primitive(types.Long)),
	)
	if err := d.CreateACIDTable("clicks", schema, nil); err != nil {
		t.Fatal(err)
	}
	srv := New(d, ManagerConfig{})
	t.Cleanup(srv.Close)
	return srv
}

func clickCount(t *testing.T, srv *Server) int64 {
	t.Helper()
	sess, err := srv.OpenSession("")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run(context.Background(), "SELECT COUNT(*) FROM clicks")
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].(int64)
}

func TestStreamCommitBoundariesAreAtomic(t *testing.T) {
	srv := newStreamServer(t)
	sess, err := srv.OpenSession("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream("clicks")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Write(types.Row{int64(i), int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := clickCount(t, srv); n != 0 {
		t.Fatalf("uncommitted batch visible: count=%d", n)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := clickCount(t, srv); n != 10 {
		t.Fatalf("count=%d after first commit, want 10", n)
	}
	// Second batch: abort discards only the uncommitted tail.
	for i := 0; i < 5; i++ {
		if err := st.Write(types.Row{int64(i), int64(2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := clickCount(t, srv); n != 10 {
		t.Fatalf("count=%d after abort, want 10", n)
	}
	// Close commits the pending tail.
	if err := st.Write(types.Row{int64(99), int64(3)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n := clickCount(t, srv); n != 11 {
		t.Fatalf("count=%d after close, want 11", n)
	}
	if st.Rows() != 11 || st.Batches() != 2 {
		t.Fatalf("rows=%d batches=%d, want 11, 2", st.Rows(), st.Batches())
	}
	if err := st.Write(types.Row{int64(0), int64(0)}); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestStreamRejectsNonACIDTable(t *testing.T) {
	srv := newStreamServer(t)
	sess, err := srv.OpenSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.OpenStream("sales"); err == nil {
		t.Fatal("streaming into a non-transactional table succeeded")
	}
	if _, err := sess.OpenStream("nope"); err == nil {
		t.Fatal("streaming into a missing table succeeded")
	}
}

func TestSessionCloseAbandonsOpenStream(t *testing.T) {
	srv := newStreamServer(t)
	sess, err := srv.OpenSession("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream("clicks")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(types.Row{int64(1), int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(types.Row{int64(2), int64(2)}); err != nil {
		t.Fatal(err)
	}
	sess.Close() // client "crashes" mid-batch

	if n := clickCount(t, srv); n != 1 {
		t.Fatalf("count=%d after session close, want 1 (only the committed batch)", n)
	}
	if err := st.Write(types.Row{int64(3), int64(3)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on abandoned stream: %v, want ErrClosed", err)
	}
	// No dangling open transaction remains to hold back compaction.
	if open := srv.Driver().Txns().OpenTxns(); len(open) != 0 {
		t.Fatalf("%d transactions left open after session close", len(open))
	}
	if _, err := sess.OpenStream("clicks"); !errors.Is(err, ErrClosed) {
		t.Fatalf("open stream on closed session: %v, want ErrClosed", err)
	}
}

func TestConcurrentStreamsAndReaders(t *testing.T) {
	srv := newStreamServer(t)
	const writers, batches, perBatch = 2, 5, 20

	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := srv.OpenSession("")
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			st, err := sess.OpenStream("clicks")
			if err != nil {
				errs <- err
				return
			}
			for b := 0; b < batches; b++ {
				for i := 0; i < perBatch; i++ {
					if err := st.Write(types.Row{int64(w*1000 + b*100 + i), int64(w)}); err != nil {
						errs <- err
						return
					}
				}
				if err := st.Commit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- st.Close()
		}(w)
	}
	// A reader races the writers: every observed count must be a multiple
	// of perBatch (commits are atomic — no torn batch is ever visible).
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := srv.OpenSession("")
		if err != nil {
			errs <- err
			return
		}
		defer sess.Close()
		for i := 0; i < 20; i++ {
			res, err := sess.Run(context.Background(), "SELECT COUNT(*) FROM clicks")
			if err != nil {
				errs <- err
				return
			}
			if n := res.Rows[0][0].(int64); n%perBatch != 0 {
				errs <- errors.New("torn batch visible")
				return
			}
		}
		errs <- nil
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := clickCount(t, srv); n != writers*batches*perBatch {
		t.Fatalf("final count=%d, want %d", n, writers*batches*perBatch)
	}
}
