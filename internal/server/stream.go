// stream.go: the streaming-insert endpoint (Hive's streaming ingest API).
// A Stream is a session-owned sequence of transactions against one ACID
// table: clients Write rows continuously and Commit at batch boundaries;
// each commit atomically publishes the batch as a delta and begins the
// next transaction. Rows between commits are staged in an uncommitted
// delta, so a client crash, an Abort, or closing the session discards the
// unfinished tail without ever having exposed it to readers.
package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/types"
)

// Stream is a continuous insert handle on one ACID table. It is owned by
// one session and is not safe for concurrent use (open one stream per
// producer; commits from different streams interleave safely through the
// transaction manager).
type Stream struct {
	sess  *Session
	table string

	loader *core.ACIDLoader // current (uncommitted) transaction
	closed bool

	committedRows int64
	batches       int64
}

// OpenStream starts a streaming insert into an ACID table. The stream's
// first transaction is open immediately; nothing becomes visible until the
// first Commit.
func (s *Session) OpenStream(table string) (*Stream, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()

	loader, err := s.srv.driver.LoadACID(table)
	if err != nil {
		return nil, err
	}
	st := &Stream{sess: s, table: table, loader: loader}

	s.mu.Lock()
	if s.closed {
		// Session closed between the checks: don't leak the transaction.
		s.mu.Unlock()
		loader.Abort()
		return nil, ErrClosed
	}
	if s.streams == nil {
		s.streams = map[*Stream]struct{}{}
	}
	s.streams[st] = struct{}{}
	s.mu.Unlock()
	return st, nil
}

// Table returns the destination table.
func (st *Stream) Table() string { return st.table }

// Write stages one row in the current transaction. It is invisible to
// readers until Commit.
func (st *Stream) Write(row types.Row) error {
	if st.closed {
		return fmt.Errorf("server: stream on %q is closed: %w", st.table, ErrClosed)
	}
	return st.loader.Write(row)
}

// Commit publishes every row written since the last commit as one atomic
// delta and opens the next transaction. Committing an empty batch is a
// no-op that keeps the current transaction.
func (st *Stream) Commit() error {
	if st.closed {
		return fmt.Errorf("server: stream on %q is closed: %w", st.table, ErrClosed)
	}
	if st.loader.Rows() == 0 {
		return nil
	}
	rows := st.loader.Rows()
	if err := st.loader.Close(); err != nil {
		return err
	}
	st.committedRows += rows
	st.batches++
	next, err := st.sess.srv.driver.LoadACID(st.table)
	if err != nil {
		// The batch committed but the stream can't continue; close it so
		// later Writes fail loudly instead of panicking on a nil loader.
		st.closed = true
		st.sess.dropStream(st)
		return err
	}
	st.loader = next
	return nil
}

// Abort discards the rows written since the last commit and opens a fresh
// transaction. Previously committed batches are unaffected.
func (st *Stream) Abort() error {
	if st.closed {
		return nil
	}
	st.loader.Abort()
	next, err := st.sess.srv.driver.LoadACID(st.table)
	if err != nil {
		st.closed = true
		st.sess.dropStream(st)
		return err
	}
	st.loader = next
	return nil
}

// Close commits any pending rows and ends the stream. Use Abort first for
// a discard-and-close.
func (st *Stream) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	st.sess.dropStream(st)
	if st.loader.Rows() == 0 {
		st.loader.Abort()
		return nil
	}
	rows := st.loader.Rows()
	if err := st.loader.Close(); err != nil {
		return err
	}
	st.committedRows += rows
	st.batches++
	return nil
}

// abandon is the session-close path: the uncommitted tail is discarded, as
// if the client had crashed mid-batch.
func (st *Stream) abandon() {
	if st.closed {
		return
	}
	st.closed = true
	st.loader.Abort()
}

// Rows returns how many rows the stream has committed (staged rows in the
// open batch are not counted until Commit).
func (st *Stream) Rows() int64 { return st.committedRows }

// TxnID returns the id of the stream's current open transaction — the one
// the next Commit publishes. Callers (the qcheck harness) use it to map
// batches to transactions for snapshot-visibility oracles.
func (st *Stream) TxnID() int64 {
	if st.closed {
		return 0
	}
	return st.loader.Txn().ID()
}

// Pending returns how many rows are staged in the open batch.
func (st *Stream) Pending() int64 {
	if st.closed {
		return 0
	}
	return st.loader.Rows()
}

// Batches returns how many transactions the stream has committed.
func (st *Stream) Batches() int64 { return st.batches }
