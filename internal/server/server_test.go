package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/fileformat"
	"repro/internal/mapred"
	"repro/internal/types"
)

// newTestDriver loads a sales fact table and an items dimension.
func newTestDriver(t *testing.T, conf core.Config) *core.Driver {
	t.Helper()
	fs := dfs.New(dfs.WithBlockSize(1 << 20))
	engine := mapred.NewEngine(mapred.Config{Slots: 4})
	d := core.NewDriver(fs, engine, conf)

	sales := types.NewSchema(
		types.Col("item_id", types.Primitive(types.Long)),
		types.Col("qty", types.Primitive(types.Long)),
		types.Col("price", types.Primitive(types.Double)),
	)
	loader, err := d.CreateTable("sales", sales, fileformat.ORC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if err := loader.Write(types.Row{int64(i % 10), int64(i % 5), float64(i%100) / 2}); err != nil {
			t.Fatal(err)
		}
		if i == 399 {
			loader.NextFile()
		}
	}
	if err := loader.Close(); err != nil {
		t.Fatal(err)
	}

	items := types.NewSchema(
		types.Col("id", types.Primitive(types.Long)),
		types.Col("name", types.Primitive(types.String)),
	)
	il, err := d.CreateTable("items", items, fileformat.ORC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := il.Write(types.Row{int64(i), fmt.Sprintf("item-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := il.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func renderRows(res *core.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, fmt.Sprint(r))
	}
	sort.Strings(out)
	return out
}

var testQueries = []string{
	"SELECT item_id, SUM(qty) FROM sales GROUP BY item_id",
	"SELECT COUNT(*) FROM sales WHERE qty > 2",
	"SELECT name, SUM(s.qty) FROM sales s JOIN items i ON s.item_id = i.id GROUP BY name",
	"SELECT item_id, AVG(price) FROM sales WHERE item_id < 5 GROUP BY item_id",
}

// TestConcurrentSessionsMatchSerial runs every query serially for
// reference, then fires many sessions — spanning engines — at the server
// concurrently and requires byte-identical row sets.
func TestConcurrentSessionsMatchSerial(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()

	reference := make([][]string, len(testQueries))
	for i, q := range testQueries {
		res, err := d.Run(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		reference[i] = renderRows(res)
	}

	srv := New(d, ManagerConfig{Pools: []PoolConfig{{Name: "default", Slots: 8, QueueDepth: 64}}})
	defer srv.Close()

	engines := []core.EngineMode{core.ModeMapReduce, core.ModeTez, core.ModeLLAP}
	var wg sync.WaitGroup
	for c := 0; c < 9; c++ {
		sess, err := srv.OpenSession("")
		if err != nil {
			t.Fatal(err)
		}
		conf := sess.Config()
		conf.Engine = engines[c%len(engines)]
		sess.SetConfig(conf)
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			for i, q := range testQueries {
				res, err := sess.Run(context.Background(), q)
				if err != nil {
					t.Errorf("session %s %q: %v", sess.ID(), q, err)
					return
				}
				got := renderRows(res)
				if fmt.Sprint(got) != fmt.Sprint(reference[i]) {
					t.Errorf("session %s (engine %v) %q:\n got %v\nwant %v",
						sess.ID(), sess.Config().Engine, q, got, reference[i])
				}
			}
		}(sess)
	}
	wg.Wait()

	for _, st := range srv.Manager().Stats() {
		if st.Running != 0 || st.Queued != 0 {
			t.Fatalf("pool %s not drained: %+v", st.Name, st)
		}
		if st.Admitted != int64(9*len(testQueries)) {
			t.Fatalf("pool %s admitted %d, want %d", st.Name, st.Admitted, 9*len(testQueries))
		}
	}
}

// TestSessionLifecycle exercises open/list/switch-pool/close.
func TestSessionLifecycle(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()
	srv := New(d, ManagerConfig{Pools: []PoolConfig{
		{Name: "interactive", Interactive: true},
		{Name: "batch", Preemptable: true},
	}})
	defer srv.Close()

	s1, err := srv.OpenSession("")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Pool() != "interactive" {
		t.Fatalf("default pool = %q, want first configured (interactive)", s1.Pool())
	}
	if _, err := srv.OpenSession("nope"); !errors.Is(err, ErrNoPool) {
		t.Fatalf("open in unknown pool: got %v, want ErrNoPool", err)
	}
	s2, err := srv.OpenSession("batch")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Sessions()); got != 2 {
		t.Fatalf("%d sessions, want 2", got)
	}
	if err := s2.SetPool("nope"); !errors.Is(err, ErrNoPool) {
		t.Fatalf("SetPool unknown: got %v, want ErrNoPool", err)
	}
	if err := s2.SetPool("interactive"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(context.Background(), "SELECT COUNT(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
	if s1.Queries() != 1 {
		t.Fatalf("s1 queries = %d, want 1", s1.Queries())
	}
	s1.Close()
	if _, err := s1.Run(context.Background(), "SELECT COUNT(*) FROM sales"); !errors.Is(err, ErrClosed) {
		t.Fatalf("run on closed session: got %v, want ErrClosed", err)
	}
	if got := len(srv.Sessions()); got != 1 {
		t.Fatalf("%d sessions after close, want 1", got)
	}
}

// blockPolicy is a dfs.ReadFaultPolicy that injects no faults but, while
// armed, parks any read of the sales table until released — holding a query
// provably in flight so the preemption path can be driven deterministically.
type blockPolicy struct {
	armed   atomic.Bool
	once    sync.Once
	blocked chan struct{} // closed when the first read parks
	release chan struct{}
}

func (p *blockPolicy) ReadFault(file string, block int64, node int) bool {
	if p.armed.Load() && strings.Contains(file, "sales") {
		p.once.Do(func() { close(p.blocked) })
		<-p.release
	}
	return false
}

// TestPreemptedQueryRequeuesAndCompletes: a long batch query is preempted
// by a starved interactive query, requeues through admission, and still
// returns the exact serial-reference result.
func TestPreemptedQueryRequeuesAndCompletes(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()

	batchQ := "SELECT item_id, SUM(qty) FROM sales GROUP BY item_id"
	interQ := "SELECT COUNT(*) FROM items"
	ref, err := d.Run(batchQ)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(ref)

	pol := &blockPolicy{blocked: make(chan struct{}), release: make(chan struct{})}
	pol.armed.Store(true)
	d.FS().SetFaultPolicy(pol)
	defer d.FS().SetFaultPolicy(nil)

	srv := New(d, ManagerConfig{
		TotalSlots: 1,
		Pools: []PoolConfig{
			{Name: "inter", Slots: 1, Interactive: true},
			{Name: "batch", Slots: 1, Preemptable: true},
		},
	})
	defer srv.Close()

	bs, err := srv.OpenSession("batch")
	if err != nil {
		t.Fatal(err)
	}
	is, err := srv.OpenSession("inter")
	if err != nil {
		t.Fatal(err)
	}

	batchDone := make(chan error, 1)
	var batchRows []string
	go func() {
		res, err := bs.Run(context.Background(), batchQ)
		if err == nil {
			batchRows = renderRows(res)
		}
		batchDone <- err
	}()

	// Wait until the batch query is inside a sales read, then starve the
	// interactive pool so the workload manager preempts it.
	select {
	case <-pol.blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("batch query never reached a sales read")
	}
	interDone := make(chan error, 1)
	go func() {
		_, err := is.Run(context.Background(), interQ)
		interDone <- err
	}()

	// The preemption fires while the batch read is parked; once observed,
	// disarm and release so the cancelled attempt unwinds and the requeued
	// attempt runs unblocked.
	deadline := time.Now().Add(10 * time.Second)
	for {
		preempted := false
		for _, st := range srv.Manager().Stats() {
			if st.Name == "batch" && st.Preempted >= 1 {
				preempted = true
			}
		}
		if preempted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch query was never preempted")
		}
		time.Sleep(time.Millisecond)
	}
	pol.armed.Store(false)
	close(pol.release)

	if err := <-interDone; err != nil {
		t.Fatalf("interactive query: %v", err)
	}
	if err := <-batchDone; err != nil {
		t.Fatalf("batch query after requeue: %v", err)
	}
	if fmt.Sprint(batchRows) != fmt.Sprint(want) {
		t.Fatalf("requeued batch result:\n got %v\nwant %v", batchRows, want)
	}
	if bs.Preemptions() != 1 {
		t.Fatalf("batch session preemptions = %d, want 1", bs.Preemptions())
	}
	// The client never saw ErrPreempted; the pool's counter records it.
	for _, st := range srv.Manager().Stats() {
		if st.Name == "batch" && st.Preempted != 1 {
			t.Fatalf("batch pool preempted = %d, want 1", st.Preempted)
		}
	}
}

// TestEstimateScanBytes: the admission estimate sums referenced tables once
// each and degrades to 0 for unknown tables or unparseable text.
func TestEstimateScanBytes(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()
	sales := d.EstimateScanBytes("SELECT COUNT(*) FROM sales")
	items := d.EstimateScanBytes("SELECT COUNT(*) FROM items")
	if sales <= 0 || items <= 0 {
		t.Fatalf("table estimates sales=%d items=%d, want > 0", sales, items)
	}
	join := d.EstimateScanBytes("SELECT name FROM sales s JOIN items i ON s.item_id = i.id")
	if join != sales+items {
		t.Fatalf("join estimate %d, want sales+items=%d", join, sales+items)
	}
	if got := d.EstimateScanBytes("SELECT * FROM nosuch"); got != 0 {
		t.Fatalf("unknown table estimate %d, want 0", got)
	}
	if got := d.EstimateScanBytes("not sql"); got != 0 {
		t.Fatalf("parse-error estimate %d, want 0", got)
	}
}

// TestServerMetricsTeardown: per-pool metrics live under "wm." in the
// driver registry while the server is open and vanish on Close, so a new
// server over the same driver re-registers cleanly.
func TestServerMetricsTeardown(t *testing.T) {
	d := newTestDriver(t, core.Config{})
	defer d.Close()
	srv := New(d, ManagerConfig{Pools: []PoolConfig{{Name: "p"}}})
	snap := d.Registry().Snapshot()
	if _, ok := snap.Values["wm.p.Running"]; !ok {
		t.Fatal("wm.p.Running not registered")
	}
	srv.Close()
	snap = d.Registry().Snapshot()
	if _, ok := snap.Values["wm.p.Running"]; ok {
		t.Fatal("wm.p.Running still registered after Close")
	}
	srv2 := New(d, ManagerConfig{Pools: []PoolConfig{{Name: "p"}}})
	srv2.Close()
}
