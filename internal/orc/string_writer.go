// string_writer.go implements the String column writer. As the paper
// describes (§4.3), the writer buffers a stripe's values and decides at
// stripe finalization whether dictionary encoding pays off: if the ratio of
// distinct dictionary entries to encoded values exceeds a configurable
// threshold (default 0.8), the column is stored directly instead.
package orc

import (
	"fmt"

	"repro/internal/orc/stream"
)

// DefaultDictionaryThreshold is the paper's default distinct/encoded ratio
// above which dictionary encoding is abandoned.
const DefaultDictionaryThreshold = 0.8

type stringColumnWriter struct {
	columnBase
	threshold float64

	// Stripe-buffered state. ids[i] is the dictionary id of row i's value,
	// or -1 for NULL; groupMarks records the value-count boundary at which
	// each index group after the first starts.
	dict       map[string]int
	dictValues []string
	dictBytes  int64
	ids        []int32
	groupMarks []int

	// Finished streams are built lazily by encode() so finish() and
	// encoding() agree.
	encoded    []finishedStream
	dictionary bool
}

func (w *stringColumnWriter) write(v any) error {
	if v == nil {
		w.hasNull = true
		w.current.Update(nil)
		w.ids = append(w.ids, -1)
		return nil
	}
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not string", w.node.ID, w.node.Type, v)
	}
	id, ok := w.dict[s]
	if !ok {
		id = len(w.dictValues)
		w.dict[s] = id
		w.dictValues = append(w.dictValues, s)
		w.dictBytes += int64(len(s))
	}
	w.ids = append(w.ids, int32(id))
	w.current.Update(s)
	return nil
}

func (w *stringColumnWriter) startGroup() {
	// The present stream is rebuilt at encode() time, so openGroup's
	// present flush is harmless here; we record the row boundary.
	w.openGroup()
	if len(w.groups) > 1 {
		w.groupMarks = append(w.groupMarks, len(w.ids))
	}
}

// encode materializes streams once per stripe.
func (w *stringColumnWriter) encode() {
	if w.encoded != nil {
		return
	}
	w.finalizeStats()
	nonNull := 0
	for _, id := range w.ids {
		if id >= 0 {
			nonNull++
		}
	}
	useDict := nonNull > 0 &&
		float64(len(w.dictValues))/float64(nonNull) <= w.threshold
	w.dictionary = useDict

	var present stream.BitFieldWriter
	// Unlike the live writers, marks here happen only at interior group
	// boundaries, so each tracker's positions slice is exactly the cut
	// list (group g>0 starts at positions[g-1]).
	var presentPos, dataPos, lengthPos positionTracker

	markAll := func(data *stream.IntWriter, bytesData *stream.ByteWriter, length *stream.IntWriter) {
		present.FlushRun()
		presentPos.mark(present.Len())
		if data != nil {
			data.FlushRun()
			dataPos.mark(data.Len())
		}
		if bytesData != nil {
			dataPos.mark(bytesData.Len())
		}
		if length != nil {
			length.FlushRun()
			lengthPos.mark(length.Len())
		}
	}

	nextMark := 0
	if useDict {
		var data stream.IntWriter // dictionary ids
		for row, id := range w.ids {
			if nextMark < len(w.groupMarks) && row == w.groupMarks[nextMark] {
				markAll(&data, nil, nil)
				nextMark++
			}
			if id < 0 {
				present.WriteBool(false)
			} else {
				present.WriteBool(true)
				data.WriteInt(int64(id))
			}
		}
		data.FlushRun()
		present.FlushRun()

		var dictData stream.ByteWriter
		var length stream.IntWriter
		for _, s := range w.dictValues {
			dictData.Put([]byte(s))
			length.WriteInt(int64(len(s)))
		}
		length.FlushRun()

		streams := []finishedStream{
			{kind: stream.Data, raw: data.Bytes(), cuts: dataPos.positions},
			{kind: stream.DictionaryData, raw: dictData.Bytes()},
			{kind: stream.Length, raw: length.Bytes()},
		}
		if w.hasNull {
			streams = append([]finishedStream{
				{kind: stream.Present, raw: present.Bytes(), cuts: presentPos.positions},
			}, streams...)
		}
		w.encoded = streams
	} else {
		var data stream.ByteWriter
		var length stream.IntWriter
		for row, id := range w.ids {
			if nextMark < len(w.groupMarks) && row == w.groupMarks[nextMark] {
				markAll(nil, &data, &length)
				nextMark++
			}
			if id < 0 {
				present.WriteBool(false)
			} else {
				present.WriteBool(true)
				s := w.dictValues[id]
				data.Put([]byte(s))
				length.WriteInt(int64(len(s)))
			}
		}
		length.FlushRun()
		present.FlushRun()
		streams := []finishedStream{
			{kind: stream.Data, raw: data.Bytes(), cuts: dataPos.positions},
			{kind: stream.Length, raw: length.Bytes(), cuts: lengthPos.positions},
		}
		if w.hasNull {
			streams = append([]finishedStream{
				{kind: stream.Present, raw: present.Bytes(), cuts: presentPos.positions},
			}, streams...)
		}
		w.encoded = streams
	}
}

func (w *stringColumnWriter) finish() []finishedStream {
	w.encode()
	return w.encoded
}

func (w *stringColumnWriter) encoding() ColumnEncoding {
	w.encode()
	if w.dictionary {
		return ColumnEncoding{Dictionary: true, DictSize: uint64(len(w.dictValues))}
	}
	return ColumnEncoding{}
}

func (w *stringColumnWriter) estimatedSize() int64 {
	// ids (4 bytes each) + dictionary bytes; direct encoding would
	// duplicate the dictionary bytes per occurrence but this estimate is
	// only used for stripe sizing.
	total := int64(len(w.ids))*4 + w.dictBytes + 64
	if nonDistinct := int64(len(w.ids)) - int64(len(w.dictValues)); nonDistinct > 0 && len(w.dictValues) > 0 {
		// Approximate direct-mode expansion using the mean entry length.
		total += nonDistinct * (w.dictBytes / int64(len(w.dictValues)))
	}
	return total
}

func (w *stringColumnWriter) reset() {
	w.resetBase()
	w.dict = make(map[string]int)
	w.dictValues = w.dictValues[:0]
	w.dictBytes = 0
	w.ids = w.ids[:0]
	w.groupMarks = w.groupMarks[:0]
	w.encoded = nil
	w.dictionary = false
}
