package orc

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/dfs"
	"repro/internal/types"
)

// writeFile writes rows into a fresh DFS file and returns a reader over it.
func writeFile(t *testing.T, fs *dfs.FS, path string, schema *types.Schema, opts *WriterOptions, rows []types.Row) *Reader {
	t.Helper()
	fw, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(fw, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if err := w.Write(row); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(fr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func readAll(t *testing.T, r *Reader, opts ReadOptions) []types.Row {
	t.Helper()
	rr, err := r.Rows(opts)
	if err != nil {
		t.Fatal(err)
	}
	var out []types.Row
	for {
		row, err := rr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
}

func simpleSchema() *types.Schema {
	return types.NewSchema(
		types.Col("id", types.Primitive(types.Long)),
		types.Col("name", types.Primitive(types.String)),
		types.Col("score", types.Primitive(types.Double)),
		types.Col("active", types.Primitive(types.Boolean)),
	)
}

func simpleRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			int64(i),
			fmt.Sprintf("name-%d", i%7),
			float64(i) * 0.5,
			i%3 == 0,
		}
	}
	return rows
}

func TestRoundTripSimple(t *testing.T) {
	fs := dfs.New()
	rows := simpleRows(100)
	r := writeFile(t, fs, "/t/f", simpleSchema(), nil, rows)
	if r.NumRows() != 100 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	got := readAll(t, r, ReadOptions{})
	if len(got) != 100 {
		t.Fatalf("read %d rows", len(got))
	}
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], rows[i])
		}
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, codec := range []compress.Kind{compress.None, compress.Zlib, compress.Snappy} {
		t.Run(codec.String(), func(t *testing.T) {
			fs := dfs.New()
			rows := simpleRows(5000)
			opts := &WriterOptions{Compression: codec, RowIndexStride: 1000, CompressionUnit: 512}
			r := writeFile(t, fs, "/t/f", simpleSchema(), opts, rows)
			if r.Compression() != codec {
				t.Fatalf("Compression = %v", r.Compression())
			}
			got := readAll(t, r, ReadOptions{})
			if len(got) != len(rows) {
				t.Fatalf("read %d rows, want %d", len(got), len(rows))
			}
			for i := range rows {
				if !reflect.DeepEqual(got[i], rows[i]) {
					t.Fatalf("row %d = %v, want %v", i, got[i], rows[i])
				}
			}
		})
	}
}

func TestRoundTripMultipleStripes(t *testing.T) {
	fs := dfs.New()
	rows := simpleRows(20000)
	opts := &WriterOptions{StripeSize: 8 << 10, RowIndexStride: 500}
	r := writeFile(t, fs, "/t/f", simpleSchema(), opts, rows)
	if r.NumStripes() < 2 {
		t.Fatalf("expected multiple stripes, got %d", r.NumStripes())
	}
	got := readAll(t, r, ReadOptions{})
	if len(got) != len(rows) {
		t.Fatalf("read %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestRoundTripNulls(t *testing.T) {
	fs := dfs.New()
	rows := make([]types.Row, 1000)
	for i := range rows {
		row := types.Row{int64(i), fmt.Sprintf("s%d", i), float64(i), true}
		if i%5 == 0 {
			row[0] = nil
		}
		if i%7 == 0 {
			row[1] = nil
		}
		if i%11 == 0 {
			row[2] = nil
		}
		if i%13 == 0 {
			row[3] = nil
		}
		rows[i] = row
	}
	r := writeFile(t, fs, "/t/f", simpleSchema(), &WriterOptions{RowIndexStride: 100}, rows)
	got := readAll(t, r, ReadOptions{})
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d = %v, want %v", i, got[i], rows[i])
		}
	}
	// File stats must report nulls.
	if !r.StatsByName("id").HasNull {
		t.Error("id column stats missing HasNull")
	}
}

// figure3Schema reproduces the nested example of paper Figure 3.
func figure3Schema() *types.Schema {
	return types.NewSchema(
		types.Col("col1", types.Primitive(types.Int)),
		types.Col("col2", types.NewArray(types.Primitive(types.Int))),
		types.Col("col4", types.NewMap(types.Primitive(types.String),
			types.NewStruct([]string{"col7", "col8"},
				[]*types.Type{types.Primitive(types.String), types.Primitive(types.Int)}))),
		types.Col("col9", types.Primitive(types.String)),
	)
}

func figure3Rows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		var arr []any
		for j := 0; j < i%4; j++ {
			arr = append(arr, int64(i*10+j))
		}
		if arr == nil {
			arr = []any{}
		}
		mv := &types.MapValue{}
		for j := 0; j < i%3; j++ {
			mv.Keys = append(mv.Keys, fmt.Sprintf("k%d", j))
			mv.Values = append(mv.Values, []any{fmt.Sprintf("v%d", i), int64(j)})
		}
		rows[i] = types.Row{int64(i), arr, mv, fmt.Sprintf("str-%d", i%5)}
		if i%6 == 0 {
			rows[i][1] = nil
		}
		if i%9 == 0 {
			rows[i][2] = nil
		}
	}
	return rows
}

func TestRoundTripNestedTypes(t *testing.T) {
	fs := dfs.New()
	rows := figure3Rows(2000)
	r := writeFile(t, fs, "/t/nested", figure3Schema(), &WriterOptions{RowIndexStride: 300}, rows)
	got := readAll(t, r, ReadOptions{})
	if len(got) != len(rows) {
		t.Fatalf("read %d rows", len(got))
	}
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d:\n got  %#v\n want %#v", i, got[i], rows[i])
		}
	}
}

func TestRoundTripUnion(t *testing.T) {
	schema := types.NewSchema(
		types.Col("u", types.NewUnion(types.Primitive(types.Long), types.Primitive(types.String))),
	)
	rows := make([]types.Row, 500)
	for i := range rows {
		if i%10 == 0 {
			rows[i] = types.Row{nil}
		} else if i%2 == 0 {
			rows[i] = types.Row{&types.UnionValue{Tag: 0, Value: int64(i)}}
		} else {
			rows[i] = types.Row{&types.UnionValue{Tag: 1, Value: fmt.Sprintf("u%d", i)}}
		}
	}
	fs := dfs.New()
	r := writeFile(t, fs, "/t/u", schema, &WriterOptions{RowIndexStride: 64}, rows)
	got := readAll(t, r, ReadOptions{})
	for i := range rows {
		if !reflect.DeepEqual(got[i], rows[i]) {
			t.Fatalf("row %d = %#v, want %#v", i, got[i], rows[i])
		}
	}
}

func TestProjection(t *testing.T) {
	fs := dfs.New()
	rows := simpleRows(100)
	r := writeFile(t, fs, "/t/f", simpleSchema(), nil, rows)
	got := readAll(t, r, ReadOptions{Include: []string{"score", "id"}})
	for i := range rows {
		if len(got[i]) != 2 {
			t.Fatalf("row width %d", len(got[i]))
		}
		if got[i][0] != rows[i][2] || got[i][1] != rows[i][0] {
			t.Fatalf("row %d = %v", i, got[i])
		}
	}
	if _, err := r.Rows(ReadOptions{Include: []string{"bogus"}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestDictionaryEncodingDecision(t *testing.T) {
	fs := dfs.New()
	schema := types.NewSchema(types.Col("s", types.Primitive(types.String)))

	// Low cardinality -> dictionary.
	lowRows := make([]types.Row, 1000)
	for i := range lowRows {
		lowRows[i] = types.Row{fmt.Sprintf("val-%d", i%10)}
	}
	r := writeFile(t, fs, "/t/low", schema, nil, lowRows)
	got := readAll(t, r, ReadOptions{})
	for i := range lowRows {
		if got[i][0] != lowRows[i][0] {
			t.Fatalf("dict row %d = %v", i, got[i])
		}
	}

	// High cardinality (all distinct) -> direct.
	hiRows := make([]types.Row, 1000)
	for i := range hiRows {
		hiRows[i] = types.Row{fmt.Sprintf("unique-value-%d", i)}
	}
	r2 := writeFile(t, fs, "/t/hi", schema, nil, hiRows)
	got2 := readAll(t, r2, ReadOptions{})
	for i := range hiRows {
		if got2[i][0] != hiRows[i][0] {
			t.Fatalf("direct row %d = %v", i, got2[i])
		}
	}

	// The dictionary-encoded file must be smaller despite equal value
	// counts (dictionary has 10 entries vs 1000).
	lo, _ := fs.Stat("/t/low")
	hi, _ := fs.Stat("/t/hi")
	if lo.Size >= hi.Size {
		t.Errorf("dictionary file (%d) not smaller than direct file (%d)", lo.Size, hi.Size)
	}
}

func TestFileStats(t *testing.T) {
	fs := dfs.New()
	rows := simpleRows(1000)
	r := writeFile(t, fs, "/t/f", simpleSchema(), nil, rows)
	id := r.StatsByName("id")
	if id.Ints.Min != 0 || id.Ints.Max != 999 {
		t.Errorf("id min/max = %d/%d", id.Ints.Min, id.Ints.Max)
	}
	wantSum := int64(999 * 1000 / 2)
	if id.Ints.Sum != wantSum {
		t.Errorf("id sum = %d, want %d", id.Ints.Sum, wantSum)
	}
	if id.NumValues != 1000 {
		t.Errorf("id count = %d", id.NumValues)
	}
	name := r.StatsByName("name")
	if name.Strings.Min != "name-0" || name.Strings.Max != "name-6" {
		t.Errorf("name min/max = %q/%q", name.Strings.Min, name.Strings.Max)
	}
	active := r.StatsByName("active")
	if active.Bools.TrueCount != 334 {
		t.Errorf("active true count = %d", active.Bools.TrueCount)
	}
}

func TestPredicatePushdownSkipsGroups(t *testing.T) {
	fs := dfs.New()
	// id is monotonically increasing, so group stats give tight ranges.
	rows := simpleRows(10000)
	opts := &WriterOptions{RowIndexStride: 1000}
	r := writeFile(t, fs, "/t/f", simpleSchema(), opts, rows)

	sarg := NewSearchArgument(Predicate{Column: "id", Op: PredBetween, Literals: []any{int64(2500), int64(3500)}})
	rr, err := r.Rows(ReadOptions{SArg: sarg, Include: []string{"id"}})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		id := row[0].(int64)
		// The reader returns whole selected groups; all returned rows
		// must come from groups overlapping [2500,3500] = groups 2 and 3.
		if id < 2000 || id >= 4000 {
			t.Fatalf("row id %d outside selected groups", id)
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("read %d rows, want 2000 (2 groups)", n)
	}
	c := rr.Counters()
	if c.GroupsRead != 2 || c.GroupsSkipped != 8 {
		t.Fatalf("groups read/skipped = %d/%d, want 2/8", c.GroupsRead, c.GroupsSkipped)
	}
}

func TestPredicatePushdownReducesDFSBytes(t *testing.T) {
	fs := dfs.New()
	rows := simpleRows(50000)
	opts := &WriterOptions{RowIndexStride: 1000}
	r := writeFile(t, fs, "/t/f", simpleSchema(), opts, rows)

	// Scan the double column: 8 incompressible bytes per value, so data
	// volume (not index overhead) dominates, as in the paper's setup.
	scan := func(sarg *SearchArgument) int64 {
		before := fs.Stats().Snapshot()
		rr, err := r.Rows(ReadOptions{SArg: sarg, Include: []string{"score"}})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := rr.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return fs.Stats().Snapshot().Diff(before).BytesRead
	}

	full := scan(nil)
	selective := scan(NewSearchArgument(Predicate{Column: "id", Op: PredLT, Literals: []any{int64(1000)}}))
	if selective*2 > full {
		t.Errorf("PPD read %d bytes, full scan %d; expected a large reduction", selective, full)
	}
}

func TestPredicatePushdownSkipsStripes(t *testing.T) {
	fs := dfs.New()
	rows := simpleRows(20000)
	opts := &WriterOptions{StripeSize: 8 << 10, RowIndexStride: 500}
	r := writeFile(t, fs, "/t/f", simpleSchema(), opts, rows)
	if r.NumStripes() < 3 {
		t.Skip("need several stripes")
	}
	sarg := NewSearchArgument(Predicate{Column: "id", Op: PredEQ, Literals: []any{int64(19999)}})
	rr, _ := r.Rows(ReadOptions{SArg: sarg, Include: []string{"id"}})
	for {
		if _, err := rr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	c := rr.Counters()
	if c.StripesSkipped == 0 {
		t.Errorf("no stripes skipped: %+v", c)
	}
}

func TestAllRowsMatchIndexOverheadOnly(t *testing.T) {
	// Paper Figure 10, query 1.hard: when all rows satisfy the predicate
	// the indexes are useless; the scan must still return everything.
	fs := dfs.New()
	rows := simpleRows(10000)
	r := writeFile(t, fs, "/t/f", simpleSchema(), &WriterOptions{RowIndexStride: 1000}, rows)
	sarg := NewSearchArgument(Predicate{Column: "id", Op: PredGE, Literals: []any{int64(0)}})
	got := readAll(t, r, ReadOptions{SArg: sarg})
	if len(got) != len(rows) {
		t.Fatalf("read %d rows, want %d", len(got), len(rows))
	}
}

func TestBlockAlignment(t *testing.T) {
	blockSize := int64(64 << 10)
	fs := dfs.New(dfs.WithBlockSize(blockSize))
	fw, _ := fs.Create("/t/aligned")
	schema := simpleSchema()
	w, err := NewWriter(fw, schema, &WriterOptions{
		StripeSize:     20 << 10,
		RowIndexStride: 500,
		BlockAlign:     true,
		BlockSize:      blockSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range simpleRows(100000) {
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fw.Close()
	fr, _ := fs.Open("/t/aligned")
	r, err := NewReader(fr)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumStripes() < 2 {
		t.Skip("need multiple stripes to check alignment")
	}
	for i, s := range r.Stripes() {
		stripeLen := s.IndexLength + s.DataLength + s.FooterLength
		if stripeLen > uint64(blockSize) {
			continue
		}
		startBlock := s.Offset / uint64(blockSize)
		endBlock := (s.Offset + stripeLen - 1) / uint64(blockSize)
		if startBlock != endBlock {
			t.Errorf("stripe %d spans blocks %d..%d", i, startBlock, endBlock)
		}
	}
	// Rows must still round-trip through the padding.
	got := readAll(t, r, ReadOptions{Include: []string{"id"}})
	if len(got) != 100000 {
		t.Fatalf("read %d rows", len(got))
	}
}

func TestMemoryManagerScalesStripes(t *testing.T) {
	mm := NewMemoryManager(30 << 10)
	fs := dfs.New()
	schema := simpleSchema()
	var writers []*Writer
	var files []*dfs.FileWriter
	for i := 0; i < 3; i++ {
		fw, _ := fs.Create(fmt.Sprintf("/t/mm%d", i))
		w, err := NewWriter(fw, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500, Memory: mm})
		if err != nil {
			t.Fatal(err)
		}
		writers = append(writers, w)
		files = append(files, fw)
	}
	// 3 writers x 20KB = 60KB > 30KB threshold: scale = 0.5.
	if got := mm.Scale(); got != 0.5 {
		t.Fatalf("Scale = %v, want 0.5", got)
	}
	if mm.TotalRegistered() != 60<<10 {
		t.Fatalf("TotalRegistered = %d", mm.TotalRegistered())
	}
	rows := simpleRows(30000)
	for _, row := range rows {
		for _, w := range writers {
			if err := w.Write(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		files[i].Close()
	}
	if mm.NumWriters() != 0 {
		t.Errorf("writers still registered after Close: %d", mm.NumWriters())
	}
	if got := mm.Scale(); got != 1 {
		t.Errorf("Scale after unregister = %v", got)
	}
	// Scaled writers must produce more, smaller stripes than an
	// unmanaged writer with the same stripe size.
	fw, _ := fs.Create("/t/unmanaged")
	w, _ := NewWriter(fw, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500})
	for _, row := range rows {
		w.Write(row)
	}
	w.Close()
	fw.Close()
	open := func(p string) *Reader {
		fr, _ := fs.Open(p)
		r, err := NewReader(fr)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	managed := open("/t/mm0").NumStripes()
	unmanaged := open("/t/unmanaged").NumStripes()
	if managed <= unmanaged {
		t.Errorf("managed writer stripes = %d, unmanaged = %d; scaling had no effect", managed, unmanaged)
	}
}

func TestWriterErrors(t *testing.T) {
	fs := dfs.New()
	fw, _ := fs.Create("/t/err")
	w, err := NewWriter(fw, simpleSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(types.Row{int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := w.Write(types.Row{"not-an-int", "x", 1.0, true}); err == nil {
		t.Error("mistyped value accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("double Close accepted")
	}
	if err := w.Write(simpleRows(1)[0]); err == nil {
		t.Error("write after Close accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	fs := dfs.New()
	fw, _ := fs.Create("/t/garbage")
	fw.Write([]byte("this is not an orc file, definitely not"))
	fw.Close()
	fr, _ := fs.Open("/t/garbage")
	if _, err := NewReader(fr); err == nil {
		t.Fatal("NewReader accepted garbage")
	}
	fw2, _ := fs.Create("/t/tiny")
	fw2.Write([]byte("x"))
	fw2.Close()
	fr2, _ := fs.Open("/t/tiny")
	if _, err := NewReader(fr2); err == nil {
		t.Fatal("NewReader accepted tiny file")
	}
}

func TestEmptyFile(t *testing.T) {
	fs := dfs.New()
	r := writeFile(t, fs, "/t/empty", simpleSchema(), nil, nil)
	if r.NumRows() != 0 || r.NumStripes() != 0 {
		t.Fatalf("empty file: rows=%d stripes=%d", r.NumRows(), r.NumStripes())
	}
	got := readAll(t, r, ReadOptions{})
	if len(got) != 0 {
		t.Fatalf("read %d rows from empty file", len(got))
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	fs := dfs.New()
	schema := figure3Schema()
	r := writeFile(t, fs, "/t/schema", schema, nil, figure3Rows(10))
	if !r.Schema().AsStruct().Equal(schema.AsStruct()) {
		t.Fatalf("schema = %s, want %s", r.Schema(), schema)
	}
}

func TestRandomizedRoundTripWithNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := types.NewSchema(
		types.Col("a", types.Primitive(types.Long)),
		types.Col("b", types.Primitive(types.String)),
		types.Col("c", types.Primitive(types.Double)),
	)
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(4000)
		rows := make([]types.Row, n)
		for i := range rows {
			row := types.Row{rng.Int63n(1000), fmt.Sprintf("v%d", rng.Intn(50)), rng.Float64()}
			for c := 0; c < 3; c++ {
				if rng.Intn(10) == 0 {
					row[c] = nil
				}
			}
			rows[i] = row
		}
		fs := dfs.New()
		stride := 1 << (4 + rng.Intn(6)) // 16..512
		r := writeFile(t, fs, "/t/rand", schema, &WriterOptions{RowIndexStride: stride, StripeSize: 16 << 10}, rows)
		got := readAll(t, r, ReadOptions{})
		if len(got) != n {
			t.Fatalf("trial %d: read %d rows, want %d", trial, len(got), n)
		}
		for i := range rows {
			if !reflect.DeepEqual(got[i], rows[i]) {
				t.Fatalf("trial %d row %d = %v, want %v", trial, i, got[i], rows[i])
			}
		}
	}
}

func TestStripeSizeAblation(t *testing.T) {
	// Larger stripes -> fewer stripes (paper §4.1's first improvement).
	fs := dfs.New()
	rows := simpleRows(50000)
	small := writeFile(t, fs, "/t/small", simpleSchema(), &WriterOptions{StripeSize: 16 << 10}, rows)
	large := writeFile(t, fs, "/t/large", simpleSchema(), &WriterOptions{StripeSize: 1 << 20}, rows)
	if small.NumStripes() <= large.NumStripes() {
		t.Errorf("small-stripe file has %d stripes, large has %d", small.NumStripes(), large.NumStripes())
	}
}

// TestChildColumnProjection exercises §4.1's forward-looking feature: only
// needed child columns of a complex type are fetched and decoded.
func TestChildColumnProjection(t *testing.T) {
	fs := dfs.New()
	rows := figure3Rows(3000)
	r := writeFile(t, fs, "/t/child", figure3Schema(), &WriterOptions{RowIndexStride: 500}, rows)

	// Include only col4 (the map) narrowed to its value-struct's col8
	// (column id 8 in Figure 3's tree).
	before := fs.Stats().Snapshot()
	rr, err := r.Rows(ReadOptions{Include: []string{"col4"}, IncludeChildIDs: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := rows[n][2]
		got := row[0]
		if want == nil {
			if got != nil {
				t.Fatalf("row %d: want NULL map, got %v", n, got)
			}
		} else {
			wm, gm := want.(*types.MapValue), got.(*types.MapValue)
			if gm.Len() != wm.Len() {
				t.Fatalf("row %d: map len %d, want %d", n, gm.Len(), wm.Len())
			}
			for i := range wm.Keys {
				// Keys (col 5) excluded -> NULL; struct present with
				// col7 NULL and col8 intact.
				if gm.Keys[i] != nil {
					t.Fatalf("row %d: excluded key read as %v", n, gm.Keys[i])
				}
				ws, gs := wm.Values[i].([]any), gm.Values[i].([]any)
				if gs[0] != nil {
					t.Fatalf("row %d: excluded col7 read as %v", n, gs[0])
				}
				if gs[1] != ws[1] {
					t.Fatalf("row %d: col8 = %v, want %v", n, gs[1], ws[1])
				}
			}
		}
		n++
	}
	if n != len(rows) {
		t.Fatalf("read %d rows", n)
	}
	narrow := fs.Stats().Snapshot().Diff(before).BytesRead

	// Full read of the same column for comparison.
	before = fs.Stats().Snapshot()
	rr2, _ := r.Rows(ReadOptions{Include: []string{"col4"}})
	for {
		if _, err := rr2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	full := fs.Stats().Snapshot().Diff(before).BytesRead
	if narrow >= full {
		t.Errorf("child projection read %d bytes, full column %d", narrow, full)
	}
}

// TestPredicatePushdownUnderCompression exercises the stored-offset (not
// raw-offset) position pointers: group seeks must land on compression-unit
// boundaries.
func TestPredicatePushdownUnderCompression(t *testing.T) {
	for _, codec := range []compress.Kind{compress.Zlib, compress.Snappy} {
		t.Run(codec.String(), func(t *testing.T) {
			fs := dfs.New()
			rows := simpleRows(20000)
			opts := &WriterOptions{
				Compression:     codec,
				RowIndexStride:  1000,
				CompressionUnit: 512, // many units per group
				StripeSize:      64 << 10,
			}
			r := writeFile(t, fs, "/t/c", simpleSchema(), opts, rows)
			sarg := NewSearchArgument(Predicate{Column: "id", Op: PredBetween, Literals: []any{int64(7100), int64(7900)}})
			rr, err := r.Rows(ReadOptions{SArg: sarg})
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			var sum int64
			for {
				row, err := rr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				id := row[0].(int64)
				if id >= 7100 && id <= 7900 {
					sum += id
				}
				n++
			}
			if n == 0 || n == len(rows) {
				t.Fatalf("groups not pruned usefully: read %d rows", n)
			}
			var want int64
			for i := int64(7100); i <= 7900; i++ {
				want += i
			}
			if sum != want {
				t.Fatalf("sum over selected range = %d, want %d", sum, want)
			}
			c := rr.Counters()
			if c.GroupsSkipped == 0 {
				t.Fatalf("no groups skipped under %s: %+v", codec, c)
			}
		})
	}
}
