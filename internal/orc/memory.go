// memory.go implements the ORC memory manager (paper §4.4): a per-task
// registry that bounds the total memory footprint of concurrent ORC writers
// by scaling their effective stripe sizes when the sum of registered stripe
// sizes exceeds a threshold.
package orc

import "sync"

// MemoryManager bounds the aggregate stripe-buffer memory of the writers
// registered with it. The zero value is not usable; use NewMemoryManager.
type MemoryManager struct {
	mu        sync.Mutex
	threshold int64
	total     int64 // sum of registered stripe sizes
	scale     float64
	writers   map[*Writer]int64
}

// NewMemoryManager creates a manager with the given byte threshold. The
// paper's default threshold is half the memory allocated to the task.
func NewMemoryManager(threshold int64) *MemoryManager {
	if threshold <= 0 {
		threshold = 1
	}
	return &MemoryManager{
		threshold: threshold,
		scale:     1,
		writers:   make(map[*Writer]int64),
	}
}

// Register adds a writer with its requested stripe size and recomputes the
// scale factor.
func (m *MemoryManager) Register(w *Writer, stripeSize int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.writers[w]; ok {
		m.total -= old
	}
	m.writers[w] = stripeSize
	m.total += stripeSize
	m.recompute()
}

// Unregister removes a closed writer; remaining writers get their original
// stripe sizes back if the total drops under the threshold.
func (m *MemoryManager) Unregister(w *Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.writers[w]; ok {
		m.total -= old
		delete(m.writers, w)
		m.recompute()
	}
}

// recompute must be called with mu held. When the total registered stripe
// size exceeds the threshold, actual stripe sizes are scaled down by
// threshold/total (paper §4.4).
func (m *MemoryManager) recompute() {
	if m.total > m.threshold {
		m.scale = float64(m.threshold) / float64(m.total)
	} else {
		m.scale = 1
	}
}

// Scale returns the current stripe-size multiplier in (0, 1].
func (m *MemoryManager) Scale() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scale
}

// TotalRegistered returns the sum of registered stripe sizes.
func (m *MemoryManager) TotalRegistered() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// NumWriters returns the number of registered writers.
func (m *MemoryManager) NumWriters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.writers)
}
