package orc

import (
	"testing"

	"repro/internal/types"
)

func intStats(min, max int64, n int64, hasNull bool) *ColumnStats {
	cs := newStatsFor(types.Long)
	cs.NumValues = n
	cs.HasNull = hasNull
	cs.Ints.Min, cs.Ints.Max, cs.Ints.hasValue = min, max, n > 0
	return cs
}

func strStats(min, max string, n int64) *ColumnStats {
	cs := newStatsFor(types.String)
	cs.NumValues = n
	cs.Strings.Min, cs.Strings.Max, cs.Strings.hasValue = min, max, n > 0
	return cs
}

func lookup(stats map[string]*ColumnStats) func(string) *ColumnStats {
	return func(name string) *ColumnStats { return stats[name] }
}

func TestSargCanSkip(t *testing.T) {
	stats := map[string]*ColumnStats{
		"x": intStats(100, 200, 50, false),
		"s": strStats("banana", "mango", 50),
	}
	cases := []struct {
		name string
		pred Predicate
		skip bool
	}{
		{"eq-below-range", Predicate{"x", PredEQ, []any{int64(50)}}, true},
		{"eq-above-range", Predicate{"x", PredEQ, []any{int64(500)}}, true},
		{"eq-in-range", Predicate{"x", PredEQ, []any{int64(150)}}, false},
		{"eq-at-min", Predicate{"x", PredEQ, []any{int64(100)}}, false},
		{"lt-at-min", Predicate{"x", PredLT, []any{int64(100)}}, true},
		{"lt-above-min", Predicate{"x", PredLT, []any{int64(101)}}, false},
		{"le-below-min", Predicate{"x", PredLE, []any{int64(99)}}, true},
		{"le-at-min", Predicate{"x", PredLE, []any{int64(100)}}, false},
		{"gt-at-max", Predicate{"x", PredGT, []any{int64(200)}}, true},
		{"gt-below-max", Predicate{"x", PredGT, []any{int64(199)}}, false},
		{"ge-above-max", Predicate{"x", PredGE, []any{int64(201)}}, true},
		{"ge-at-max", Predicate{"x", PredGE, []any{int64(200)}}, false},
		{"between-misses-low", Predicate{"x", PredBetween, []any{int64(0), int64(99)}}, true},
		{"between-misses-high", Predicate{"x", PredBetween, []any{int64(201), int64(300)}}, true},
		{"between-overlaps", Predicate{"x", PredBetween, []any{int64(150), int64(300)}}, false},
		{"in-all-outside", Predicate{"x", PredIn, []any{int64(1), int64(2)}}, true},
		{"in-one-inside", Predicate{"x", PredIn, []any{int64(1), int64(150)}}, false},
		{"isnull-no-nulls", Predicate{"x", PredIsNull, nil}, true},
		{"string-eq-outside", Predicate{"s", PredEQ, []any{"zebra"}}, true},
		{"string-eq-inside", Predicate{"s", PredEQ, []any{"cherry"}}, false},
		{"unknown-column", Predicate{"nope", PredEQ, []any{int64(1)}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sa := NewSearchArgument(c.pred)
			if got := sa.CanSkip(lookup(stats)); got != c.skip {
				t.Errorf("CanSkip = %v, want %v", got, c.skip)
			}
		})
	}
}

func TestSargNullHandling(t *testing.T) {
	withNulls := map[string]*ColumnStats{"x": intStats(1, 10, 5, true)}
	if NewSearchArgument(Predicate{"x", PredIsNull, nil}).CanSkip(lookup(withNulls)) {
		t.Error("IS NULL skipped an extent with nulls")
	}
	allNull := map[string]*ColumnStats{"x": intStats(0, 0, 0, true)}
	if !NewSearchArgument(Predicate{"x", PredEQ, []any{int64(0)}}).CanSkip(lookup(allNull)) {
		t.Error("equality over an all-null extent not skipped")
	}
}

func TestSargConjunction(t *testing.T) {
	stats := map[string]*ColumnStats{"x": intStats(0, 10, 5, false), "y": intStats(100, 110, 5, false)}
	// One impossible conjunct suffices.
	sa := NewSearchArgument(
		Predicate{"x", PredGE, []any{int64(0)}},  // possible
		Predicate{"y", PredLT, []any{int64(50)}}, // impossible
	)
	if !sa.CanSkip(lookup(stats)) {
		t.Error("conjunction with an impossible predicate not skipped")
	}
	// All possible: no skip.
	sa2 := NewSearchArgument(
		Predicate{"x", PredGE, []any{int64(0)}},
		Predicate{"y", PredLE, []any{int64(105)}},
	)
	if sa2.CanSkip(lookup(stats)) {
		t.Error("satisfiable conjunction skipped")
	}
}

func TestSargNumericCoercion(t *testing.T) {
	stats := map[string]*ColumnStats{"x": intStats(0, 10, 5, false)}
	// Float literal against integer stats.
	if !NewSearchArgument(Predicate{"x", PredGT, []any{15.5}}).CanSkip(lookup(stats)) {
		t.Error("float literal above int max not skipped")
	}
	// Mismatched type (string vs int stats): MAYBE, never skip.
	if NewSearchArgument(Predicate{"x", PredEQ, []any{"nope"}}).CanSkip(lookup(stats)) {
		t.Error("uncoercible literal caused a skip")
	}
}

func TestSargNilIsNeverSkipping(t *testing.T) {
	var sa *SearchArgument
	if sa.CanSkip(lookup(nil)) {
		t.Error("nil sarg skipped")
	}
}

func TestStatsMergeMatchesUpdate(t *testing.T) {
	// Merging partial stats must equal bulk updates — the invariant the
	// three-level index depends on.
	a := newStatsFor(types.Long)
	b := newStatsFor(types.Long)
	all := newStatsFor(types.Long)
	for i := int64(0); i < 100; i++ {
		v := (i*37)%50 - 10
		if i%2 == 0 {
			a.Update(v)
		} else {
			b.Update(v)
		}
		all.Update(v)
	}
	a.Update(nil)
	all.Update(nil)
	merged := newStatsFor(types.Long)
	merged.Merge(a)
	merged.Merge(b)
	if merged.NumValues != all.NumValues || merged.HasNull != all.HasNull ||
		merged.Ints.Min != all.Ints.Min || merged.Ints.Max != all.Ints.Max || merged.Ints.Sum != all.Ints.Sum {
		t.Errorf("merged %+v != bulk %+v", merged.Ints, all.Ints)
	}
}

func TestMetadataRejectsCorruption(t *testing.T) {
	// Footer decoding over garbage must error, not panic or hang.
	garbage := [][]byte{
		{},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x01, 0x02, 0x03},
	}
	for _, g := range garbage {
		if _, err := decodeFooter(g); err == nil && len(g) > 0 {
			// Some garbage decodes to an empty-but-valid footer; that is
			// acceptable as long as it does not panic.
			continue
		}
	}
	if _, err := decodePostscript([]byte("not a postscript")); err == nil {
		t.Error("postscript decoded from garbage")
	}
	if _, err := decodeStripeFooter([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Error("stripe footer decoded from garbage")
	}
}
