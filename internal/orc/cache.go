// cache.go defines the cache hooks an LLAP-style daemon layer plugs into
// the ORC reader (Camacho-Rodríguez et al. 2019; the paper's §9 outlook):
// a data cache holding decompressed stream chunks keyed by (file, stripe,
// column, stream kind, index group), and a metadata cache holding decoded
// footers and row indexes so repeat queries skip footer parsing and the
// I/O behind SARG evaluation. The reader works identically without them;
// with them, cached reads never touch the DFS (and thus never pay its
// simulated disk charge). The concrete caches live in internal/llap —
// this package only declares the interfaces to avoid a dependency cycle.
package orc

import (
	"strconv"

	"repro/internal/orc/stream"
)

// WholeStream is the ChunkKey.Group value for stripe-global stream fetches
// (dictionary data and dictionary lengths), which are not sliced per index
// group.
const WholeStream = -1

// ChunkKey identifies one decompressed chunk of ORC stream data: the bytes
// of one stream of one column that one index group of one stripe decodes
// from. Keys are only meaningful for immutable files (HDFS semantics:
// table files are written once and never modified in place).
type ChunkKey struct {
	// Path is the DFS path of the ORC file.
	Path string
	// Stripe is the stripe ordinal within the file.
	Stripe int
	// Column is the column id in the decomposed column tree.
	Column int
	// Stream is the stream kind (present, data, length, ...).
	Stream stream.Kind
	// Group is the index-group ordinal within the stripe, or WholeStream
	// for stripe-global streams.
	Group int
}

// ChunkCache stores decompressed stream chunks shared across queries.
// Implementations must be safe for concurrent use; the returned bytes are
// aliased, never copied, and must be treated as immutable by all parties.
type ChunkCache interface {
	GetChunk(key ChunkKey) ([]byte, bool)
	PutChunk(key ChunkKey, data []byte)
}

// MetaCache stores decoded, immutable ORC metadata (file footers, stripe
// footers, row indexes) keyed by an opaque string. Values are opaque to the
// cache; this package stores *cachedFileMeta and *cachedStripeMeta.
// Implementations must be safe for concurrent use.
type MetaCache interface {
	GetMeta(key string) (any, bool)
	PutMeta(key string, v any)
}

// Caches bundles the two cache hooks a reader may use. Either field may be
// nil to disable that cache.
type Caches struct {
	Chunks ChunkCache
	Meta   MetaCache
}

// cachedFileMeta is the decoded tail of an ORC file: everything NewReader
// parses. All fields are immutable after construction.
type cachedFileMeta struct {
	ps     *Postscript
	footer *Footer
	meta   *FileMetadata
}

// cachedStripeMeta is the decoded metadata of one stripe. The indexes slice
// is sparse: only the columns some past scan needed are decoded; a later
// scan needing more merges in the missing ones and re-publishes a copy.
// Published values are never mutated in place.
type cachedStripeMeta struct {
	footer  *StripeFooter
	indexes []*RowIndex
}

// stripeMetaKey derives the metadata-cache key of a stripe.
func stripeMetaKey(path string, stripe int) string {
	// Paths cannot contain '\x00'; the separator keeps keys collision-free.
	return path + "\x00stripe\x00" + strconv.Itoa(stripe)
}
