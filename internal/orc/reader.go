// reader.go implements the ORC file reader: it opens a file by its
// postscript and footer, answers metadata queries from file-level
// statistics, and scans rows with column projection and predicate pushdown.
// The reader skips whole stripes using stripe-level statistics and skips
// index groups within a stripe using index-group statistics, reading from
// the filesystem only the byte ranges of streams that selected groups
// need (paper §4.2, Figure 10).
package orc

import (
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/obs"
	"repro/internal/orc/stream"
	"repro/internal/types"
)

// ReaderAtSize is the random-access input an ORC reader needs;
// *dfs.FileReader implements it.
type ReaderAtSize interface {
	io.ReaderAt
	Size() int64
}

// Reader provides access to an ORC file's metadata and rows.
type Reader struct {
	f      ReaderAtSize
	path   string  // DFS path; cache key space (empty disables caching)
	caches *Caches // optional LLAP-style caches; nil fields disable
	ps     *Postscript
	footer *Footer
	meta   *FileMetadata
	codec  compress.Codec
	tree   *types.ColumnTree
}

// readMetaAt reads metadata bytes (postscript, footers, row indexes),
// tagging the read as a metadata read when the underlying file supports the
// distinction (*dfs.FileReader does).
func readMetaAt(f ReaderAtSize, p []byte, off int64) (int, error) {
	if mr, ok := f.(interface {
		ReadAtMeta(p []byte, off int64) (int, error)
	}); ok {
		return mr.ReadAtMeta(p, off)
	}
	return f.ReadAt(p, off)
}

// NewReader opens an ORC file, reading its postscript, footer and
// stripe-statistics metadata.
func NewReader(f ReaderAtSize) (*Reader, error) {
	return NewCachedReader(f, "", nil)
}

// NewCachedReader opens an ORC file like NewReader, additionally consulting
// the given caches (either may be nil). path names the file in the cache
// key space; it must be stable and unique for the file's immutable
// contents. When the metadata cache holds the file's decoded tail, no bytes
// are read here at all.
func NewCachedReader(f ReaderAtSize, path string, caches *Caches) (*Reader, error) {
	r := &Reader{f: f, path: path, caches: caches}
	if mc := r.metaCache(); mc != nil {
		if v, ok := mc.GetMeta(path); ok {
			if fm, ok := v.(*cachedFileMeta); ok {
				codec, err := compress.ForKind(fm.ps.Compression)
				if err != nil {
					return nil, err
				}
				r.ps, r.footer, r.meta, r.codec = fm.ps, fm.footer, fm.meta, codec
				r.tree = types.Decompose(fm.footer.Schema)
				return r, nil
			}
		}
	}
	size := f.Size()
	if size < int64(len(Magic))+2 {
		return nil, fmt.Errorf("orc: file too small (%d bytes)", size)
	}
	var lenByte [1]byte
	if _, err := readMetaAt(f, lenByte[:], size-1); err != nil {
		return nil, fmt.Errorf("orc: reading postscript length: %w", err)
	}
	psLen := int64(lenByte[0])
	if size < 1+psLen {
		return nil, fmt.Errorf("orc: postscript length %d exceeds file", psLen)
	}
	psBuf := make([]byte, psLen)
	if _, err := readMetaAt(f, psBuf, size-1-psLen); err != nil {
		return nil, fmt.Errorf("orc: reading postscript: %w", err)
	}
	ps, err := decodePostscript(psBuf)
	if err != nil {
		return nil, err
	}
	codec, err := compress.ForKind(ps.Compression)
	if err != nil {
		return nil, err
	}
	footerEnd := size - 1 - psLen
	footerStart := footerEnd - int64(ps.FooterLength)
	metaStart := footerStart - int64(ps.MetadataLength)
	if metaStart < int64(len(Magic)) {
		return nil, fmt.Errorf("orc: footer/metadata lengths exceed file")
	}
	buf := make([]byte, footerEnd-metaStart)
	if _, err := readMetaAt(f, buf, metaStart); err != nil {
		return nil, fmt.Errorf("orc: reading footer: %w", err)
	}
	metaRaw, err := decodeSection(codec, buf[:ps.MetadataLength])
	if err != nil {
		return nil, err
	}
	meta, err := decodeFileMetadata(metaRaw)
	if err != nil {
		return nil, err
	}
	footerRaw, err := decodeSection(codec, buf[ps.MetadataLength:])
	if err != nil {
		return nil, err
	}
	footer, err := decodeFooter(footerRaw)
	if err != nil {
		return nil, err
	}
	r.ps, r.footer, r.meta, r.codec = ps, footer, meta, codec
	r.tree = types.Decompose(footer.Schema)
	if mc := r.metaCache(); mc != nil {
		mc.PutMeta(path, &cachedFileMeta{ps: ps, footer: footer, meta: meta})
	}
	return r, nil
}

// metaCache returns the metadata cache when one is usable for this file.
func (r *Reader) metaCache() MetaCache {
	if r.caches == nil || r.caches.Meta == nil || r.path == "" {
		return nil
	}
	return r.caches.Meta
}

// chunkCache returns the data-chunk cache when one is usable for this file.
func (r *Reader) chunkCache() ChunkCache {
	if r.caches == nil || r.caches.Chunks == nil || r.path == "" {
		return nil
	}
	return r.caches.Chunks
}

// Schema returns the file's schema.
func (r *Reader) Schema() *types.Schema { return r.footer.Schema }

// NumRows returns the total row count from the footer.
func (r *Reader) NumRows() uint64 { return r.footer.NumRows }

// NumStripes returns the stripe count.
func (r *Reader) NumStripes() int { return len(r.footer.Stripes) }

// Stripes returns the stripe directory (position pointers).
func (r *Reader) Stripes() []StripeInformation { return r.footer.Stripes }

// Compression returns the file's general-purpose codec kind.
func (r *Reader) Compression() compress.Kind { return r.ps.Compression }

// FileStats returns file-level statistics by column id; the paper notes
// these answer simple aggregation queries without scanning.
func (r *Reader) FileStats() []*ColumnStats { return r.footer.Statistics }

// StatsByName returns the file-level statistics of a top-level column.
func (r *Reader) StatsByName(name string) *ColumnStats {
	i := r.footer.Schema.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return r.footer.Statistics[r.tree.TopLevel(i).ID]
}

func (r *Reader) statsLookup(cols []*ColumnStats) func(string) *ColumnStats {
	return func(name string) *ColumnStats {
		i := r.footer.Schema.ColumnIndex(name)
		if i < 0 {
			return nil
		}
		id := r.tree.TopLevel(i).ID
		if id >= len(cols) {
			return nil
		}
		return cols[id]
	}
}

// ReadOptions configures a row scan.
type ReadOptions struct {
	// Include lists the top-level columns to materialize, in output
	// order; nil means all columns.
	Include []string
	// IncludeChildIDs optionally narrows complex columns to specific
	// child columns of the decomposed column tree (§4.1's "only read
	// needed child columns"; ids as assigned by types.Decompose).
	// Excluded children are neither fetched nor decoded and surface as
	// NULL in reconstructed values. Nil means all children.
	IncludeChildIDs []int
	// SArg, when set, is evaluated against stripe- and index-group-level
	// statistics to skip data (predicate pushdown).
	SArg *SearchArgument
	// Tally, when set, attributes this scan's cache traffic (hits, misses,
	// decompressed bytes served from memory) to one consumer for
	// per-operator profiles. DFS bytes are attributed by the FileReader's
	// own tally; this covers the reads the cache absorbed.
	Tally *obs.IOTally
}

// ScanCounters reports what a scan skipped and read; Figure 10 plots the
// DFS-bytes consequence of these.
type ScanCounters struct {
	StripesRead    int
	StripesSkipped int
	GroupsRead     int
	GroupsSkipped  int
}

// RowReader iterates the rows of an ORC file.
type RowReader struct {
	r        *Reader
	include  []int        // top-level column indexes
	childSet map[int]bool // nil = every child column
	sarg     *SearchArgument
	counters ScanCounters
	tally    *obs.IOTally

	stripeIdx int
	// Current stripe state.
	stripe     *stripeState
	groupIdx   int   // next entry of stripe.selected to open
	rowsLeft   int64 // rows remaining in the current index group
	colReaders []columnReader
}

type stripeState struct {
	info     StripeInformation
	ordinal  int // stripe index within the file; chunk-cache key component
	footer   *StripeFooter
	indexes  []*RowIndex
	selected []int // index groups selected by the sarg, ascending
	// runs are maximal ranges of consecutive selected groups; the reader
	// coalesces each stream's I/O per run (one DFS read per stream per
	// run) while decoders still open per group.
	runs     [][2]int
	runOf    map[int]int // group -> index into runs
	numGroup int
	stride   int64
	// Stream layout: absolute file offset and length per directory entry,
	// plus per-column stream lists.
	dirOffsets []uint64
	byColumn   map[int][]int // column id -> directory indexes in order
	// Cache of whole-stream fetches (dictionary streams).
	wholeCache map[int][]byte
	// Cache of per-run stream reads, keyed by (directory index, run).
	runCache map[[2]int][]byte
}

// Rows starts a scan.
func (r *Reader) Rows(opts ReadOptions) (*RowReader, error) {
	var include []int
	if opts.Include == nil {
		for i := range r.footer.Schema.Columns {
			include = append(include, i)
		}
	} else {
		for _, name := range opts.Include {
			i := r.footer.Schema.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("orc: unknown column %q", name)
			}
			include = append(include, i)
		}
	}
	rr := &RowReader{r: r, include: include, sarg: opts.SArg, tally: opts.Tally}
	if opts.IncludeChildIDs != nil {
		rr.childSet = map[int]bool{}
		for _, id := range opts.IncludeChildIDs {
			rr.childSet[id] = true
			// An included node needs its ancestors' structural streams.
			for n := r.tree.Nodes[id]; n != nil; n = n.Parent {
				rr.childSet[n.ID] = true
			}
		}
	}
	return rr, nil
}

// wantColumn reports whether a column id should be fetched and decoded.
func (rr *RowReader) wantColumn(id int) bool {
	return rr.childSet == nil || rr.childSet[id]
}

// Counters returns the scan's skip/read accounting so far.
func (rr *RowReader) Counters() ScanCounters { return rr.counters }

// Next returns the next row (columns in Include order) or io.EOF.
func (rr *RowReader) Next() (types.Row, error) {
	for {
		if rr.rowsLeft > 0 {
			rr.rowsLeft--
			row := make(types.Row, len(rr.colReaders))
			for i, cr := range rr.colReaders {
				v, err := cr.next()
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			return row, nil
		}
		if rr.stripe != nil && rr.groupIdx < len(rr.stripe.selected) {
			if err := rr.openGroup(); err != nil {
				return nil, err
			}
			continue
		}
		if err := rr.nextStripe(); err != nil {
			return nil, err
		}
	}
}

// nextStripe advances to the next stripe whose statistics pass the sarg,
// loading its footer, row index and selected group runs.
func (rr *RowReader) nextStripe() error {
	r := rr.r
	for {
		if rr.stripeIdx >= len(r.footer.Stripes) {
			return io.EOF
		}
		idx := rr.stripeIdx
		rr.stripeIdx++
		// Stripe-level skip using file metadata: no bytes of the stripe
		// are touched.
		if idx < len(r.meta.StripeStats) && rr.sarg.CanSkip(r.statsLookup(r.meta.StripeStats[idx])) {
			rr.counters.StripesSkipped++
			info := r.footer.Stripes[idx]
			rr.counters.GroupsSkipped += groupCount(info.NumRows, r.footer.RowIndexStride)
			continue
		}
		st, err := rr.loadStripe(idx, r.footer.Stripes[idx])
		if err != nil {
			return err
		}
		rr.counters.StripesRead++
		rr.stripe = st
		rr.groupIdx = 0
		rr.rowsLeft = 0
		if len(st.selected) == 0 {
			continue
		}
		return nil
	}
}

func groupCount(numRows, stride uint64) int {
	if stride == 0 {
		return 1
	}
	return int((numRows + stride - 1) / stride)
}

func (rr *RowReader) loadStripe(idx int, info StripeInformation) (*stripeState, error) {
	r := rr.r
	sf, indexes, err := rr.stripeMeta(idx, info)
	if err != nil {
		return nil, err
	}
	st := &stripeState{
		info:       info,
		ordinal:    idx,
		footer:     sf,
		indexes:    indexes,
		stride:     int64(r.footer.RowIndexStride),
		byColumn:   make(map[int][]int),
		wholeCache: make(map[int][]byte),
		runCache:   make(map[[2]int][]byte),
		runOf:      make(map[int]int),
	}
	// Directory offsets: streams are laid out consecutively after the
	// index section.
	off := info.Offset + info.IndexLength
	for i, s := range sf.Streams {
		st.dirOffsets = append(st.dirOffsets, off)
		off += s.Length
		st.byColumn[s.Column] = append(st.byColumn[s.Column], i)
	}
	for _, ri := range indexes {
		if ri != nil {
			st.numGroup = len(ri.Entries)
			break
		}
	}
	if st.numGroup == 0 {
		st.numGroup = 1
	}
	// Select index groups by sarg over group-level statistics.
	for g := 0; g < st.numGroup; g++ {
		skip := rr.sarg.CanSkip(func(name string) *ColumnStats {
			i := r.footer.Schema.ColumnIndex(name)
			if i < 0 {
				return nil
			}
			id := r.tree.TopLevel(i).ID
			if id >= len(indexes) || indexes[id] == nil || g >= len(indexes[id].Entries) {
				return nil
			}
			return indexes[id].Entries[g].Stats
		})
		if skip {
			rr.counters.GroupsSkipped++
		} else {
			rr.counters.GroupsRead++
			st.selected = append(st.selected, g)
		}
	}
	// Coalesce selected groups into I/O runs. Gaps of skipped groups are
	// read through when they are cheaper to stream past than to seek
	// over (real ORC merges close disk ranges the same way); only the
	// I/O is widened — skipped groups are never decoded.
	maxGapGroups := 0
	if st.numGroup > 0 && info.DataLength > 0 {
		perGroup := info.DataLength / uint64(st.numGroup)
		if perGroup > 0 {
			maxGapGroups = int(readThroughGapBytes / perGroup)
		}
	}
	for i := 0; i < len(st.selected); {
		j := i
		for j+1 < len(st.selected) && st.selected[j+1]-st.selected[j]-1 <= maxGapGroups {
			j++
		}
		run := [2]int{st.selected[i], st.selected[j] + 1}
		for _, g := range st.selected[i : j+1] {
			st.runOf[g] = len(st.runs)
		}
		st.runs = append(st.runs, run)
		i = j + 1
	}
	return st, nil
}

// readThroughGapBytes bounds the skipped bytes the reader will stream past
// instead of seeking (cf. ORC's minimum disk seek size).
const readThroughGapBytes = 64 << 10

// readStripeFooter fetches and decodes one stripe's footer.
func (r *Reader) readStripeFooter(info StripeInformation) (*StripeFooter, error) {
	sfBuf := make([]byte, info.FooterLength)
	sfOff := int64(info.Offset + info.IndexLength + info.DataLength)
	if _, err := readMetaAt(r.f, sfBuf, sfOff); err != nil {
		return nil, fmt.Errorf("orc: reading stripe footer: %w", err)
	}
	sfRaw, err := decodeSection(r.codec, sfBuf)
	if err != nil {
		return nil, err
	}
	return decodeStripeFooter(sfRaw)
}

// stripeMeta returns the stripe footer and the row indexes of at least the
// columns this scan touches, serving from and feeding the metadata cache.
// Cached values are immutable; when a cached entry lacks indexes this scan
// needs, the missing columns are fetched, merged into a fresh copy, and the
// copy re-published.
func (rr *RowReader) stripeMeta(idx int, info StripeInformation) (*StripeFooter, []*RowIndex, error) {
	r := rr.r
	mc := r.metaCache()
	var key string
	var cached *cachedStripeMeta
	if mc != nil {
		key = stripeMetaKey(r.path, idx)
		if v, ok := mc.GetMeta(key); ok {
			cached, _ = v.(*cachedStripeMeta)
		}
	}
	var sf *StripeFooter
	if cached != nil {
		sf = cached.footer
	} else {
		var err error
		if sf, err = r.readStripeFooter(info); err != nil {
			return nil, nil, err
		}
	}
	var have []*RowIndex
	if cached != nil {
		have = cached.indexes
	}
	indexes, loaded, err := rr.loadRowIndexes(info, sf, have)
	if err != nil {
		return nil, nil, err
	}
	if mc != nil && (cached == nil || loaded) {
		mc.PutMeta(key, &cachedStripeMeta{footer: sf, indexes: indexes})
	}
	return sf, indexes, nil
}

// loadRowIndexes fetches and decodes the row indexes of the columns this
// scan touches: the projected columns' subtrees plus any columns the
// search argument evaluates. Columns already present in have are reused
// without I/O; unread columns stay nil. The second result reports whether
// any index was actually fetched.
func (rr *RowReader) loadRowIndexes(info StripeInformation, sf *StripeFooter, have []*RowIndex) ([]*RowIndex, bool, error) {
	r := rr.r
	needed := make([]bool, len(sf.IndexLens))
	for _, top := range rr.include {
		for _, id := range r.tree.Subtree(r.tree.TopLevel(top).ID) {
			if id < len(needed) && rr.wantColumn(id) {
				needed[id] = true
			}
		}
	}
	if rr.sarg != nil {
		for _, p := range rr.sarg.Predicates {
			if i := r.footer.Schema.ColumnIndex(p.Column); i >= 0 {
				if id := r.tree.TopLevel(i).ID; id < len(needed) {
					needed[id] = true
				}
			}
		}
	}
	indexes := make([]*RowIndex, len(sf.IndexLens))
	copy(indexes, have)
	loaded := false
	off := int64(info.Offset)
	for col, length := range sf.IndexLens {
		if indexes[col] != nil || !needed[col] || length == 0 {
			off += int64(length)
			continue
		}
		buf := make([]byte, length)
		if _, err := readMetaAt(r.f, buf, off); err != nil {
			return nil, false, fmt.Errorf("orc: reading row index of column %d: %w", col, err)
		}
		off += int64(length)
		raw, err := decodeSection(r.codec, buf)
		if err != nil {
			return nil, false, err
		}
		ri, err := decodeRowIndex(raw)
		if err != nil {
			return nil, false, err
		}
		indexes[col] = ri
		loaded = true
	}
	return indexes, loaded, nil
}

// openGroup builds column readers positioned at the start of the next
// selected index group. Decoders never read across an index-group boundary
// because encoder runs (and bit-field byte alignment) are flushed exactly
// there; each group is decoded from its own position pointers.
func (rr *RowReader) openGroup() error {
	st := rr.stripe
	g := st.selected[rr.groupIdx]
	rr.groupIdx++
	src := &runSource{r: rr.r, st: st, group: g, tally: rr.tally}
	rr.colReaders = rr.colReaders[:0]
	for _, top := range rr.include {
		node := rr.r.tree.TopLevel(top)
		cr, err := buildColumnReaderFiltered(node, src, rr.wantColumn)
		if err != nil {
			return err
		}
		rr.colReaders = append(rr.colReaders, cr)
	}
	// Rows in the group: a full stride except for a short final group.
	stripeRows := int64(st.info.NumRows)
	start := int64(g) * st.stride
	end := start + st.stride
	if end > stripeRows {
		end = stripeRows
	}
	rr.rowsLeft = end - start
	return nil
}

// runSource fetches decoded stream bytes for one index group, reading from
// the file only the byte ranges the group needs.
type runSource struct {
	r     *Reader
	st    *stripeState
	group int
	tally *obs.IOTally
}

func (s *runSource) encodingOf(colID int) ColumnEncoding {
	if colID < len(s.st.footer.Encodings) {
		return s.st.footer.Encodings[colID]
	}
	return ColumnEncoding{}
}

// locate finds the directory index of (col, kind) and the position slot of
// that stream within the column's row-index entries.
func (s *runSource) locate(colID int, kind stream.Kind) (dirIdx, posSlot int, found bool) {
	for slot, di := range s.st.byColumn[colID] {
		if s.st.footer.Streams[di].Kind == kind {
			return di, slot, true
		}
	}
	return 0, 0, false
}

func (s *runSource) fetch(colID int, kind stream.Kind) ([]byte, bool, error) {
	di, slot, found := s.locate(colID, kind)
	if !found {
		return nil, false, nil
	}
	cc := s.r.chunkCache()
	var ck ChunkKey
	if cc != nil {
		ck = ChunkKey{Path: s.r.path, Stripe: s.st.ordinal, Column: colID, Stream: kind, Group: s.group}
		if raw, ok := cc.GetChunk(ck); ok {
			s.tally.CacheHit(int64(len(raw)))
			return raw, true, nil
		}
		s.tally.CacheMiss()
	}
	info := s.st.footer.Streams[di]
	base := s.st.dirOffsets[di]
	// One coalesced DFS read covers the whole run of consecutive selected
	// groups this group belongs to; the group's slice is cut from it.
	run := s.st.runs[s.st.runOf[s.group]]
	runStart := s.position(colID, run[0], slot)
	runEnd := info.Length
	if run[1] < s.st.numGroup {
		runEnd = s.position(colID, run[1], slot)
	}
	if runStart > runEnd {
		return nil, false, fmt.Errorf("orc: column %d stream %s: position %d > %d", colID, kind, runStart, runEnd)
	}
	key := [2]int{di, run[0]}
	stored, ok := s.st.runCache[key]
	if !ok {
		stored = make([]byte, runEnd-runStart)
		if len(stored) > 0 {
			if _, err := s.r.f.ReadAt(stored, int64(base+runStart)); err != nil {
				return nil, false, fmt.Errorf("orc: reading stream: %w", err)
			}
		}
		s.st.runCache[key] = stored
	}
	// Stored-byte range of the group within the run.
	startPos := s.position(colID, s.group, slot) - runStart
	endPos := uint64(len(stored))
	if s.group+1 < run[1] {
		endPos = s.position(colID, s.group+1, slot) - runStart
	}
	if startPos > endPos || endPos > uint64(len(stored)) {
		return nil, false, fmt.Errorf("orc: column %d stream %s: bad group slice [%d:%d] of %d", colID, kind, startPos, endPos, len(stored))
	}
	raw, err := dechunk(s.r.codec, stored[startPos:endPos], 0, int(endPos-startPos))
	if err != nil {
		return nil, false, err
	}
	if cc != nil {
		cc.PutChunk(ck, raw)
	}
	return raw, true, nil
}

func (s *runSource) fetchWhole(colID int, kind stream.Kind) ([]byte, bool, error) {
	di, _, found := s.locate(colID, kind)
	if !found {
		return nil, false, nil
	}
	if raw, ok := s.st.wholeCache[di]; ok {
		return raw, true, nil
	}
	cc := s.r.chunkCache()
	var ck ChunkKey
	if cc != nil {
		ck = ChunkKey{Path: s.r.path, Stripe: s.st.ordinal, Column: colID, Stream: kind, Group: WholeStream}
		if raw, ok := cc.GetChunk(ck); ok {
			s.tally.CacheHit(int64(len(raw)))
			s.st.wholeCache[di] = raw
			return raw, true, nil
		}
		s.tally.CacheMiss()
	}
	info := s.st.footer.Streams[di]
	buf := make([]byte, info.Length)
	if len(buf) > 0 {
		if _, err := s.r.f.ReadAt(buf, int64(s.st.dirOffsets[di])); err != nil {
			return nil, false, fmt.Errorf("orc: reading stream: %w", err)
		}
	}
	raw, err := dechunk(s.r.codec, buf, 0, len(buf))
	if err != nil {
		return nil, false, err
	}
	s.st.wholeCache[di] = raw
	if cc != nil {
		cc.PutChunk(ck, raw)
	}
	return raw, true, nil
}

// StripeStreamInfo describes one stream of a stripe for inspection tools
// (cmd/orcdump): its column, kind, stored (possibly compressed) size, and
// decompressed size — the chunk-cache key space and its byte costs.
type StripeStreamInfo struct {
	Column  int
	Kind    stream.Kind
	Stored  uint64
	Decoded uint64
}

// StripeStreams reads stripe i's footer and returns its stream directory
// with stored and decompressed sizes.
func (r *Reader) StripeStreams(i int) ([]StripeStreamInfo, error) {
	if i < 0 || i >= len(r.footer.Stripes) {
		return nil, fmt.Errorf("orc: stripe %d out of range (%d stripes)", i, len(r.footer.Stripes))
	}
	info := r.footer.Stripes[i]
	sf, err := r.readStripeFooter(info)
	if err != nil {
		return nil, err
	}
	out := make([]StripeStreamInfo, 0, len(sf.Streams))
	off := info.Offset + info.IndexLength
	for _, st := range sf.Streams {
		buf := make([]byte, st.Length)
		if len(buf) > 0 {
			if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
				return nil, fmt.Errorf("orc: reading stream: %w", err)
			}
		}
		raw, err := dechunk(r.codec, buf, 0, len(buf))
		if err != nil {
			return nil, err
		}
		out = append(out, StripeStreamInfo{Column: st.Column, Kind: st.Kind, Stored: st.Length, Decoded: uint64(len(raw))})
		off += st.Length
	}
	return out, nil
}

// position returns the stored-byte offset of group g in the column's
// posSlot-th stream.
func (s *runSource) position(colID, g, posSlot int) uint64 {
	if colID >= len(s.st.indexes) || s.st.indexes[colID] == nil {
		return 0
	}
	entries := s.st.indexes[colID].Entries
	if g >= len(entries) || posSlot >= len(entries[g].Positions) {
		return 0
	}
	return entries[g].Positions[posSlot]
}
