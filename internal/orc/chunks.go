// chunks.go implements the compression-unit framing of §4.3: when a
// general-purpose codec is configured, each stream is stored as a sequence
// of independently decompressible units. Units are cut at index-group
// boundaries (and at the configured unit size within a group) so that a
// row-index position — a stored-byte offset — is always a unit start.
package orc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
)

// DefaultCompressionUnit is the default unit size (paper §4.3: 256 KB).
const DefaultCompressionUnit = 256 << 10

// Unit header layout: flag byte (0 = stored raw, 1 = compressed), uvarint
// original length, uvarint stored length, then the payload.
const (
	unitRaw        = 0
	unitCompressed = 1
)

// chunkStream compresses raw stream bytes into framed units, cutting a unit
// boundary exactly at each offset in cuts (ascending, within len(raw)).
// It returns the stored bytes and, for each cut (including the implicit
// leading 0), the stored-byte offset where that cut's unit begins.
func chunkStream(codec compress.Codec, raw []byte, cuts []uint64, unitSize int) (stored []byte, storedCuts []uint64, err error) {
	if codec == nil {
		// No framing: stored bytes are the raw bytes and positions map
		// one to one.
		storedCuts = append([]uint64{0}, cuts...)
		return raw, storedCuts, nil
	}
	if unitSize <= 0 {
		unitSize = DefaultCompressionUnit
	}
	bounds := append([]uint64{0}, cuts...)
	bounds = append(bounds, uint64(len(raw)))
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] > bounds[i+1] || bounds[i+1] > uint64(len(raw)) {
			return nil, nil, fmt.Errorf("orc: bad chunk cut %d > %d", bounds[i], bounds[i+1])
		}
	}
	for i := 0; i+1 < len(bounds); i++ {
		storedCuts = append(storedCuts, uint64(len(stored)))
		seg := raw[bounds[i]:bounds[i+1]]
		for start := 0; start < len(seg) || (start == 0 && len(seg) == 0); start += unitSize {
			end := start + unitSize
			if end > len(seg) {
				end = len(seg)
			}
			stored, err = appendUnit(codec, stored, seg[start:end])
			if err != nil {
				return nil, nil, err
			}
			if len(seg) == 0 {
				break
			}
		}
	}
	return stored, storedCuts, nil
}

func appendUnit(codec compress.Codec, dst, chunk []byte) ([]byte, error) {
	comp, err := codec.Compress(nil, chunk)
	if err != nil {
		return nil, err
	}
	if len(comp) < len(chunk) {
		dst = append(dst, unitCompressed)
		dst = binary.AppendUvarint(dst, uint64(len(chunk)))
		dst = binary.AppendUvarint(dst, uint64(len(comp)))
		return append(dst, comp...), nil
	}
	dst = append(dst, unitRaw)
	dst = binary.AppendUvarint(dst, uint64(len(chunk)))
	dst = binary.AppendUvarint(dst, uint64(len(chunk)))
	return append(dst, chunk...), nil
}

// dechunk decompresses framed units starting at stored-byte offset off and
// stopping at stored-byte offset end (or the end of the buffer), returning
// the raw bytes.
func dechunk(codec compress.Codec, stored []byte, off, end int) ([]byte, error) {
	if codec == nil {
		if end > len(stored) || off > end {
			return nil, fmt.Errorf("orc: stream slice [%d:%d] out of range %d", off, end, len(stored))
		}
		return stored[off:end], nil
	}
	if end > len(stored) {
		end = len(stored)
	}
	var out []byte
	pos := off
	for pos < end {
		if pos >= len(stored) {
			return nil, fmt.Errorf("orc: truncated compression unit header")
		}
		flag := stored[pos]
		pos++
		origLen, n := binary.Uvarint(stored[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("orc: bad unit original length")
		}
		pos += n
		storedLen, n := binary.Uvarint(stored[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("orc: bad unit stored length")
		}
		pos += n
		if pos+int(storedLen) > len(stored) {
			return nil, fmt.Errorf("orc: truncated compression unit payload")
		}
		payload := stored[pos : pos+int(storedLen)]
		pos += int(storedLen)
		switch flag {
		case unitRaw:
			out = append(out, payload...)
		case unitCompressed:
			var err error
			out, err = codec.Decompress(out, payload, int(origLen))
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("orc: bad compression unit flag %d", flag)
		}
	}
	return out, nil
}

// encodeSection compresses a metadata section (footer, stripe footer, row
// index) as a single run of units; metadata sections have no internal cuts.
func encodeSection(codec compress.Codec, raw []byte, unitSize int) ([]byte, error) {
	stored, _, err := chunkStream(codec, raw, nil, unitSize)
	return stored, err
}

// decodeSection decompresses a whole metadata section.
func decodeSection(codec compress.Codec, stored []byte) ([]byte, error) {
	return dechunk(codec, stored, 0, len(stored))
}
