// sarg.go implements search arguments: the predicates the query engine
// pushes down to the ORC reader so it can skip stripes and index groups
// whose statistics prove no row can match (paper §4.2).
package orc

import (
	"fmt"

	"repro/internal/types"
)

// PredOp is a predicate comparison operator.
type PredOp int

// Supported predicate operators over column statistics.
const (
	PredEQ PredOp = iota
	PredLT
	PredLE
	PredGT
	PredGE
	PredBetween // two literals: lo <= col <= hi
	PredIn      // any number of literals
	PredIsNull
)

// String returns the operator's SQL-ish spelling.
func (op PredOp) String() string {
	switch op {
	case PredEQ:
		return "="
	case PredLT:
		return "<"
	case PredLE:
		return "<="
	case PredGT:
		return ">"
	case PredGE:
		return ">="
	case PredBetween:
		return "BETWEEN"
	case PredIn:
		return "IN"
	case PredIsNull:
		return "IS NULL"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Predicate is one conjunct of a search argument: Column op Literals.
type Predicate struct {
	Column   string
	Op       PredOp
	Literals []any
}

// SearchArgument is a conjunction of predicates. Disjunctions are not pushed
// down (they stay in the Filter operator), matching the paper's "push
// certain predicates to the reader".
type SearchArgument struct {
	Predicates []Predicate
}

// NewSearchArgument builds a search argument from conjuncts.
func NewSearchArgument(preds ...Predicate) *SearchArgument {
	return &SearchArgument{Predicates: preds}
}

// statsRange extracts a comparable (min, max) pair from column stats.
// ok is false when the stats carry no typed range (e.g. no non-null values),
// in which case only the null/NumValues information is usable.
func statsRange(cs *ColumnStats) (kind types.Kind, min, max any, ok bool) {
	switch {
	case cs.Ints != nil && cs.Ints.hasValue:
		return types.Long, cs.Ints.Min, cs.Ints.Max, true
	case cs.Doubles != nil && cs.Doubles.hasValue:
		return types.Double, cs.Doubles.Min, cs.Doubles.Max, true
	case cs.Strings != nil && cs.Strings.hasValue:
		return types.String, cs.Strings.Min, cs.Strings.Max, true
	}
	return 0, nil, nil, false
}

// coerce normalizes a literal to the stats' comparable representation:
// int64 literals compare against double ranges and vice versa.
func coerce(kind types.Kind, v any) (any, bool) {
	switch kind {
	case types.Long:
		switch x := v.(type) {
		case int64:
			return x, true
		case float64:
			return int64(x), true
		}
	case types.Double:
		switch x := v.(type) {
		case float64:
			return x, true
		case int64:
			return float64(x), true
		}
	case types.String:
		if s, ok := v.(string); ok {
			return s, true
		}
	}
	return nil, false
}

// CanSkip reports whether the extent described by stats (an index group, a
// stripe or a whole file) definitely contains no matching row, i.e. some
// conjunct evaluates to NO over [min, max]. A missing column or untyped
// stats yields MAYBE, which never skips.
func (sa *SearchArgument) CanSkip(stats func(column string) *ColumnStats) bool {
	if sa == nil {
		return false
	}
	for _, p := range sa.Predicates {
		cs := stats(p.Column)
		if cs == nil {
			continue
		}
		if predicateDefinitelyFalse(p, cs) {
			return true
		}
	}
	return false
}

func predicateDefinitelyFalse(p Predicate, cs *ColumnStats) bool {
	if p.Op == PredIsNull {
		// Definitely false only if the extent has no nulls at all.
		return !cs.HasNull
	}
	// All other operators need a non-null match; an all-null extent
	// cannot satisfy them.
	if cs.NumValues == 0 {
		return true
	}
	kind, min, max, ok := statsRange(cs)
	if !ok {
		return false
	}
	cmpMin := func(lit any) (int, bool) {
		c, ok := coerce(kind, lit)
		if !ok {
			return 0, false
		}
		return types.Compare(kind, c, min), true
	}
	cmpMax := func(lit any) (int, bool) {
		c, ok := coerce(kind, lit)
		if !ok {
			return 0, false
		}
		return types.Compare(kind, c, max), true
	}
	switch p.Op {
	case PredEQ:
		if len(p.Literals) != 1 {
			return false
		}
		a, ok1 := cmpMin(p.Literals[0])
		b, ok2 := cmpMax(p.Literals[0])
		return ok1 && ok2 && (a < 0 || b > 0)
	case PredLT:
		// col < lit is impossible when lit <= min.
		c, ok := cmpMin(p.Literals[0])
		return ok && c <= 0
	case PredLE:
		c, ok := cmpMin(p.Literals[0])
		return ok && c < 0
	case PredGT:
		// col > lit is impossible when lit >= max.
		c, ok := cmpMax(p.Literals[0])
		return ok && c >= 0
	case PredGE:
		c, ok := cmpMax(p.Literals[0])
		return ok && c > 0
	case PredBetween:
		if len(p.Literals) != 2 {
			return false
		}
		// Impossible when hi < min or lo > max.
		hiVsMin, ok1 := cmpMin(p.Literals[1])
		loVsMax, ok2 := cmpMax(p.Literals[0])
		return (ok1 && hiVsMin < 0) || (ok2 && loVsMax > 0)
	case PredIn:
		for _, lit := range p.Literals {
			a, ok1 := cmpMin(lit)
			b, ok2 := cmpMax(lit)
			if !ok1 || !ok2 || (a >= 0 && b <= 0) {
				return false // this literal might be in range
			}
		}
		return len(p.Literals) > 0
	}
	return false
}
