// vecreader.go implements the vectorized reader of paper §6.5: column
// vectors are populated straight from ORC's columnar streams — far more
// naturally than from row formats — including the no-null flag that lets
// vectorized expressions skip null checks. Deserialization is eager; the
// engine relies on projection and predicate pushdown (§6.1) instead of
// lazy decoding.
package orc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/orc/stream"
	"repro/internal/types"
	"repro/internal/vector"
)

// BatchReader scans an ORC file batch by batch. It shares the stripe /
// index-group selection machinery (predicate pushdown) with RowReader.
type BatchReader struct {
	rr      *RowReader
	fillers []batchFiller
	kinds   []types.Kind
}

// Batches starts a vectorized scan. Include columns must be primitive.
func (r *Reader) Batches(opts ReadOptions) (*BatchReader, error) {
	rr, err := r.Rows(opts)
	if err != nil {
		return nil, err
	}
	br := &BatchReader{rr: rr}
	for _, top := range rr.include {
		k := r.footer.Schema.Columns[top].Type.Kind
		if !k.IsPrimitive() {
			return nil, fmt.Errorf("orc: vectorized read of complex column %q", r.footer.Schema.Columns[top].Name)
		}
		br.kinds = append(br.kinds, k)
	}
	return br, nil
}

// Kinds returns the column kinds, aligned with the batch columns.
func (br *BatchReader) Kinds() []types.Kind { return br.kinds }

// NewBatchFor allocates a batch with matching column vector types.
func (br *BatchReader) NewBatchFor(n int) *vector.VectorizedRowBatch {
	cols := make([]vector.ColumnVector, len(br.kinds))
	for i, k := range br.kinds {
		switch {
		case k.IsInteger() || k == types.Boolean || k == types.Timestamp:
			cols[i] = vector.NewLongColumnVector(n)
		case k.IsFloating():
			cols[i] = vector.NewDoubleColumnVector(n)
		default:
			cols[i] = vector.NewBytesColumnVector(n)
		}
	}
	return vector.NewBatch(n, cols...)
}

// Counters exposes the scan's skip accounting.
func (br *BatchReader) Counters() ScanCounters { return br.rr.Counters() }

// batchFiller decodes up to n values of one column into a vector.
type batchFiller interface {
	fill(n int) error
}

// Next fills the batch, returning false at end of file. The batch size is
// bounded by the batch's first column capacity and never crosses an index
// group (decoder entry points).
func (br *BatchReader) Next(b *vector.VectorizedRowBatch) (bool, error) {
	rr := br.rr
	for rr.rowsLeft == 0 {
		if rr.stripe != nil && rr.groupIdx < len(rr.stripe.selected) {
			if err := br.openGroup(b); err != nil {
				return false, err
			}
			continue
		}
		if err := rr.nextStripe(); err != nil {
			if err == io.EOF {
				return false, nil
			}
			return false, err
		}
		rr.colReaders = nil
		br.fillers = nil // force reopen on the new stripe
	}
	b.Reset()
	n := int64(b.Columns[0].Capacity())
	if n > rr.rowsLeft {
		n = rr.rowsLeft
	}
	rr.rowsLeft -= n
	for _, f := range br.fillers {
		if err := f.fill(int(n)); err != nil {
			return false, err
		}
	}
	b.Size = int(n)
	return true, nil
}

// openGroup positions vector fillers at the next selected index group.
func (br *BatchReader) openGroup(b *vector.VectorizedRowBatch) error {
	rr := br.rr
	st := rr.stripe
	g := st.selected[rr.groupIdx]
	rr.groupIdx++
	src := &runSource{r: rr.r, st: st, group: g, tally: rr.tally}
	br.fillers = br.fillers[:0]
	for slot, top := range rr.include {
		node := rr.r.tree.TopLevel(top)
		f, err := newBatchFiller(node, src, b, slot)
		if err != nil {
			return err
		}
		br.fillers = append(br.fillers, f)
	}
	stripeRows := int64(st.info.NumRows)
	start := int64(g) * st.stride
	end := start + st.stride
	if end > stripeRows {
		end = stripeRows
	}
	rr.rowsLeft = end - start
	return nil
}

func newBatchFiller(node *types.ColumnNode, src streamSource, b *vector.VectorizedRowBatch, slot int) (batchFiller, error) {
	present, err := newPresentReader(src, node.ID)
	if err != nil {
		return nil, err
	}
	k := node.Type.Kind
	switch {
	case k.IsInteger() || k == types.Timestamp:
		raw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		return &longFiller{present: present, data: stream.NewIntReader(raw, 0), out: b.Long(slot)}, nil
	case k == types.Boolean:
		raw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		return &boolFiller{present: present, data: stream.NewBitFieldReader(raw, 0), out: b.Long(slot)}, nil
	case k.IsFloating():
		raw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		return &doubleFiller{present: present, data: stream.NewByteReader(raw, 0), out: b.Double(slot)}, nil
	case k == types.String, k == types.Binary:
		return newBytesFiller(node, src, present, b.Bytes(slot))
	}
	return nil, fmt.Errorf("orc: no vector filler for kind %s", k)
}

type longFiller struct {
	present presentReader
	data    *stream.IntReader
	out     *vector.LongColumnVector
}

func (f *longFiller) fill(n int) error {
	out := f.out
	for i := 0; i < n; i++ {
		ok, err := f.present.isPresent()
		if err != nil {
			return err
		}
		if !ok {
			out.SetNull(i)
			continue
		}
		v, err := f.data.ReadInt()
		if err != nil {
			return err
		}
		out.Vector[i] = v
	}
	return nil
}

type boolFiller struct {
	present presentReader
	data    *stream.BitFieldReader
	out     *vector.LongColumnVector
}

func (f *boolFiller) fill(n int) error {
	out := f.out
	for i := 0; i < n; i++ {
		ok, err := f.present.isPresent()
		if err != nil {
			return err
		}
		if !ok {
			out.SetNull(i)
			continue
		}
		v, err := f.data.ReadBool()
		if err != nil {
			return err
		}
		if v {
			out.Vector[i] = 1
		} else {
			out.Vector[i] = 0
		}
	}
	return nil
}

type doubleFiller struct {
	present presentReader
	data    *stream.ByteReader
	out     *vector.DoubleColumnVector
}

func (f *doubleFiller) fill(n int) error {
	out := f.out
	for i := 0; i < n; i++ {
		ok, err := f.present.isPresent()
		if err != nil {
			return err
		}
		if !ok {
			out.SetNull(i)
			continue
		}
		bts, err := f.data.ReadN(8)
		if err != nil {
			return err
		}
		out.Vector[i] = math.Float64frombits(binary.LittleEndian.Uint64(bts))
	}
	return nil
}

// bytesFiller handles both direct and dictionary string encodings; the
// vectors reference the underlying buffers without copying.
type bytesFiller struct {
	present presentReader
	out     *vector.BytesColumnVector
	// direct mode
	data   *stream.ByteReader
	length *stream.IntReader
	// dictionary mode
	ids  *stream.IntReader
	dict [][]byte
}

func newBytesFiller(node *types.ColumnNode, src streamSource, present presentReader, out *vector.BytesColumnVector) (batchFiller, error) {
	enc := src.encodingOf(node.ID)
	f := &bytesFiller{present: present, out: out}
	if enc.Dictionary {
		idsRaw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		dictRaw, _, err := src.fetchWhole(node.ID, stream.DictionaryData)
		if err != nil {
			return nil, err
		}
		lenRaw, _, err := src.fetchWhole(node.ID, stream.Length)
		if err != nil {
			return nil, err
		}
		lengths := stream.NewIntReader(lenRaw, 0)
		data := stream.NewByteReader(dictRaw, 0)
		dict := make([][]byte, 0, enc.DictSize)
		for i := uint64(0); i < enc.DictSize; i++ {
			n, err := lengths.ReadInt()
			if err != nil {
				return nil, err
			}
			bts, err := data.ReadN(int(n))
			if err != nil {
				return nil, err
			}
			dict = append(dict, bts)
		}
		f.ids = stream.NewIntReader(idsRaw, 0)
		f.dict = dict
		return f, nil
	}
	dataRaw, _, err := src.fetch(node.ID, stream.Data)
	if err != nil {
		return nil, err
	}
	lenRaw, _, err := src.fetch(node.ID, stream.Length)
	if err != nil {
		return nil, err
	}
	f.data = stream.NewByteReader(dataRaw, 0)
	f.length = stream.NewIntReader(lenRaw, 0)
	return f, nil
}

func (f *bytesFiller) fill(n int) error {
	out := f.out
	for i := 0; i < n; i++ {
		ok, err := f.present.isPresent()
		if err != nil {
			return err
		}
		if !ok {
			out.SetNull(i)
			continue
		}
		if f.ids != nil {
			id, err := f.ids.ReadInt()
			if err != nil {
				return err
			}
			if id < 0 || id >= int64(len(f.dict)) {
				return fmt.Errorf("orc: dictionary id %d out of range", id)
			}
			out.Vector[i] = f.dict[id]
			continue
		}
		ln, err := f.length.ReadInt()
		if err != nil {
			return err
		}
		bts, err := f.data.ReadN(int(ln))
		if err != nil {
			return err
		}
		out.Vector[i] = bts
	}
	return nil
}
