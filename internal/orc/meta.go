// meta.go implements the binary encoding of ORC file metadata: the
// postscript, file footer, file metadata (stripe-level statistics), stripe
// footers and row indexes. Real ORC serializes these with Protocol Buffers;
// this reproduction uses a hand-rolled varint encoding (DESIGN.md §4.4).
package orc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/orc/stream"
	"repro/internal/types"
)

// Magic identifies our ORC files; it appears in the postscript.
const Magic = "GORC"

// metaEnc is an append-only encoder for metadata sections.
type metaEnc struct {
	buf []byte
}

func (e *metaEnc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *metaEnc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *metaEnc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *metaEnc) bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *metaEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// metaDec decodes metadata sections; it records the first error and turns
// subsequent reads into no-ops so call sites stay linear.
type metaDec struct {
	buf []byte
	pos int
	err error
}

func (d *metaDec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("orc: corrupt metadata: %s at offset %d", msg, d.pos)
	}
}

func (d *metaDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *metaDec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *metaDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

func (d *metaDec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	b := d.buf[d.pos]
	d.pos++
	return b != 0
}

func (d *metaDec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if d.pos+int(n) > len(d.buf) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Postscript is the last section of an ORC file, preceded only by its own
// one-byte length. It locates the footer and records the compression codec
// (paper Figure 2).
type Postscript struct {
	FooterLength    uint64
	MetadataLength  uint64
	Compression     compress.Kind
	CompressionUnit uint64
	Version         uint64
}

func (p *Postscript) encode() []byte {
	var e metaEnc
	e.u64(p.FooterLength)
	e.u64(p.MetadataLength)
	e.u64(uint64(p.Compression))
	e.u64(p.CompressionUnit)
	e.u64(p.Version)
	e.str(Magic)
	return e.buf
}

func decodePostscript(buf []byte) (*Postscript, error) {
	d := &metaDec{buf: buf}
	p := &Postscript{}
	p.FooterLength = d.u64()
	p.MetadataLength = d.u64()
	p.Compression = compress.Kind(d.u64())
	p.CompressionUnit = d.u64()
	p.Version = d.u64()
	magic := d.str()
	if d.err != nil {
		return nil, d.err
	}
	if magic != Magic {
		return nil, fmt.Errorf("orc: bad magic %q (not an ORC file?)", magic)
	}
	return p, nil
}

// StripeInformation locates a stripe within the file: these are the position
// pointers to stripe starting points the paper stores in the file footer.
type StripeInformation struct {
	Offset       uint64 // absolute file offset of the stripe
	IndexLength  uint64 // bytes of row-index section at the stripe start
	DataLength   uint64 // bytes of data streams
	FooterLength uint64 // bytes of stripe footer
	NumRows      uint64
}

// Footer is the file footer: schema, stripe directory, row count and
// file-level column statistics.
type Footer struct {
	NumRows        uint64
	Schema         *types.Schema
	Stripes        []StripeInformation
	Statistics     []*ColumnStats // indexed by column id over the column tree
	RowIndexStride uint64
}

func encodeSchema(e *metaEnc, s *types.Schema) {
	e.u64(uint64(len(s.Columns)))
	for _, c := range s.Columns {
		e.str(c.Name)
		encodeType(e, c.Type)
	}
}

func encodeType(e *metaEnc, t *types.Type) {
	e.u64(uint64(t.Kind))
	e.u64(uint64(len(t.Children)))
	for i, c := range t.Children {
		if t.Kind == types.Struct {
			e.str(t.FieldNames[i])
		}
		encodeType(e, c)
	}
}

func decodeSchema(d *metaDec) *types.Schema {
	n := d.u64()
	s := &types.Schema{}
	for i := uint64(0); i < n && d.err == nil; i++ {
		name := d.str()
		t := decodeType(d, 0)
		if d.err != nil {
			break
		}
		s.Columns = append(s.Columns, types.Col(name, t))
	}
	return s
}

func decodeType(d *metaDec, depth int) *types.Type {
	if depth > 64 {
		d.fail("type nesting too deep")
		return nil
	}
	k := types.Kind(d.u64())
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("type child count exceeds buffer")
		return nil
	}
	t := &types.Type{Kind: k}
	for i := uint64(0); i < n && d.err == nil; i++ {
		if k == types.Struct {
			t.FieldNames = append(t.FieldNames, d.str())
		}
		t.Children = append(t.Children, decodeType(d, depth+1))
	}
	return t
}

func (f *Footer) encode() []byte {
	var e metaEnc
	e.u64(f.NumRows)
	e.u64(f.RowIndexStride)
	encodeSchema(&e, f.Schema)
	e.u64(uint64(len(f.Stripes)))
	for _, s := range f.Stripes {
		e.u64(s.Offset)
		e.u64(s.IndexLength)
		e.u64(s.DataLength)
		e.u64(s.FooterLength)
		e.u64(s.NumRows)
	}
	e.u64(uint64(len(f.Statistics)))
	for _, cs := range f.Statistics {
		encodeStats(&e, cs)
	}
	return e.buf
}

func decodeFooter(buf []byte) (*Footer, error) {
	d := &metaDec{buf: buf}
	f := &Footer{}
	f.NumRows = d.u64()
	f.RowIndexStride = d.u64()
	f.Schema = decodeSchema(d)
	ns := d.u64()
	if ns > uint64(len(buf)) {
		return nil, fmt.Errorf("orc: footer declares %d stripes", ns)
	}
	for i := uint64(0); i < ns && d.err == nil; i++ {
		f.Stripes = append(f.Stripes, StripeInformation{
			Offset:       d.u64(),
			IndexLength:  d.u64(),
			DataLength:   d.u64(),
			FooterLength: d.u64(),
			NumRows:      d.u64(),
		})
	}
	nc := d.u64()
	if nc > uint64(len(buf)) {
		return nil, fmt.Errorf("orc: footer declares %d column stats", nc)
	}
	for i := uint64(0); i < nc && d.err == nil; i++ {
		f.Statistics = append(f.Statistics, decodeStats(d))
	}
	return f, d.err
}

// FileMetadata carries stripe-level statistics for every column of every
// stripe, letting readers skip stripes without touching them (paper §4.2's
// second statistics level).
type FileMetadata struct {
	StripeStats [][]*ColumnStats // [stripe][column id]
}

func (m *FileMetadata) encode() []byte {
	var e metaEnc
	e.u64(uint64(len(m.StripeStats)))
	for _, cols := range m.StripeStats {
		e.u64(uint64(len(cols)))
		for _, cs := range cols {
			encodeStats(&e, cs)
		}
	}
	return e.buf
}

func decodeFileMetadata(buf []byte) (*FileMetadata, error) {
	d := &metaDec{buf: buf}
	m := &FileMetadata{}
	ns := d.u64()
	if ns > uint64(len(buf))+1 {
		return nil, fmt.Errorf("orc: metadata declares %d stripes", ns)
	}
	for i := uint64(0); i < ns && d.err == nil; i++ {
		nc := d.u64()
		cols := make([]*ColumnStats, 0, nc)
		for j := uint64(0); j < nc && d.err == nil; j++ {
			cols = append(cols, decodeStats(d))
		}
		m.StripeStats = append(m.StripeStats, cols)
	}
	return m, d.err
}

// ColumnEncoding records how a column's streams are encoded in a stripe.
type ColumnEncoding struct {
	Dictionary bool
	DictSize   uint64
}

// StreamInfo is one entry of a stripe footer's stream directory. Offsets
// are relative to the start of the stripe's data section and refer to the
// stored (possibly compressed) bytes.
type StreamInfo struct {
	Column int
	Kind   stream.Kind
	Length uint64
}

// StripeFooter directs a reader to the streams of a stripe. IndexLens
// holds the stored length of each column's row-index section (real ORC
// likewise stores one ROW_INDEX stream per column, so a projected read
// fetches only the indexes of the columns it touches).
type StripeFooter struct {
	Streams   []StreamInfo
	Encodings []ColumnEncoding // by column id
	Stats     []*ColumnStats   // stripe-level stats by column id
	IndexLens []uint64         // by column id
}

func (sf *StripeFooter) encode() []byte {
	var e metaEnc
	e.u64(uint64(len(sf.Streams)))
	for _, s := range sf.Streams {
		e.u64(uint64(s.Column))
		e.u64(uint64(s.Kind))
		e.u64(s.Length)
	}
	e.u64(uint64(len(sf.Encodings)))
	for _, enc := range sf.Encodings {
		e.bool(enc.Dictionary)
		e.u64(enc.DictSize)
	}
	e.u64(uint64(len(sf.Stats)))
	for _, cs := range sf.Stats {
		encodeStats(&e, cs)
	}
	e.u64(uint64(len(sf.IndexLens)))
	for _, n := range sf.IndexLens {
		e.u64(n)
	}
	return e.buf
}

func decodeStripeFooter(buf []byte) (*StripeFooter, error) {
	d := &metaDec{buf: buf}
	sf := &StripeFooter{}
	ns := d.u64()
	if ns > uint64(len(buf)) {
		return nil, fmt.Errorf("orc: stripe footer declares %d streams", ns)
	}
	for i := uint64(0); i < ns && d.err == nil; i++ {
		sf.Streams = append(sf.Streams, StreamInfo{
			Column: int(d.u64()),
			Kind:   stream.Kind(d.u64()),
			Length: d.u64(),
		})
	}
	ne := d.u64()
	for i := uint64(0); i < ne && d.err == nil; i++ {
		sf.Encodings = append(sf.Encodings, ColumnEncoding{
			Dictionary: d.bool(),
			DictSize:   d.u64(),
		})
	}
	nc := d.u64()
	for i := uint64(0); i < nc && d.err == nil; i++ {
		sf.Stats = append(sf.Stats, decodeStats(d))
	}
	ni := d.u64()
	for i := uint64(0); i < ni && d.err == nil; i++ {
		sf.IndexLens = append(sf.IndexLens, d.u64())
	}
	return sf, d.err
}

// RowIndexEntry is the index-group level index for one column: position
// pointers into each of the column's streams (paper Figure 2's round-dotted
// lines into metadata and data streams) plus the group's statistics.
type RowIndexEntry struct {
	Positions []uint64 // one per stream of this column, in directory order
	Stats     *ColumnStats
}

// RowIndex is the per-column index over all index groups of a stripe.
type RowIndex struct {
	Entries []RowIndexEntry
}

func encodeRowIndex(ri *RowIndex) []byte {
	var e metaEnc
	e.u64(uint64(len(ri.Entries)))
	for _, ent := range ri.Entries {
		e.u64(uint64(len(ent.Positions)))
		for _, p := range ent.Positions {
			e.u64(p)
		}
		encodeStats(&e, ent.Stats)
	}
	return e.buf
}

func decodeRowIndex(buf []byte) (*RowIndex, error) {
	d := &metaDec{buf: buf}
	ri := &RowIndex{}
	ng := d.u64()
	if ng > uint64(len(buf))+1 {
		return nil, fmt.Errorf("orc: row index declares %d groups", ng)
	}
	for g := uint64(0); g < ng && d.err == nil; g++ {
		np := d.u64()
		ent := RowIndexEntry{}
		for p := uint64(0); p < np && d.err == nil; p++ {
			ent.Positions = append(ent.Positions, d.u64())
		}
		ent.Stats = decodeStats(d)
		ri.Entries = append(ri.Entries, ent)
	}
	return ri, d.err
}
