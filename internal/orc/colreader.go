// colreader.go implements the per-type column readers that reconstruct rows
// from decoded stream bytes. A reader tree is (re)built for every run of
// consecutive selected index groups, positioned at the run's stream offsets
// (paper §4.2's position pointers).
package orc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/orc/stream"
	"repro/internal/types"
)

// streamSource hands a column reader the decoded (raw) bytes of one of its
// streams for the current group run. found is false when the stream was not
// written (e.g. the present stream of a stripe without nulls).
type streamSource interface {
	fetch(colID int, kind stream.Kind) (raw []byte, found bool, err error)
	// fetchWhole returns the full stream regardless of the group run;
	// dictionary streams are stripe-global.
	fetchWhole(colID int, kind stream.Kind) (raw []byte, found bool, err error)
	encodingOf(colID int) ColumnEncoding
}

// columnReader reconstructs one value per call for its column.
type columnReader interface {
	next() (any, error)
}

// presentReader wraps the optional null bit-field stream.
type presentReader struct {
	bits *stream.BitFieldReader // nil when the column has no nulls
}

func newPresentReader(src streamSource, colID int) (presentReader, error) {
	raw, found, err := src.fetch(colID, stream.Present)
	if err != nil {
		return presentReader{}, err
	}
	if !found {
		return presentReader{}, nil
	}
	return presentReader{bits: stream.NewBitFieldReader(raw, 0)}, nil
}

// isPresent reports whether the next value is non-null.
func (p *presentReader) isPresent() (bool, error) {
	if p.bits == nil {
		return true, nil
	}
	return p.bits.ReadBool()
}

// buildColumnReader constructs the reader tree for a column node, reading
// every child column.
func buildColumnReader(node *types.ColumnNode, src streamSource) (columnReader, error) {
	return buildColumnReaderFiltered(node, src, func(int) bool { return true })
}

// nullColumnReader stands in for an excluded child column (§4.1): nothing
// is fetched or decoded; every value reads as NULL.
type nullColumnReader struct{}

func (nullColumnReader) next() (any, error) { return nil, nil }

// buildColumnReaderFiltered constructs the reader tree, substituting
// null readers for children excluded by want.
func buildColumnReaderFiltered(node *types.ColumnNode, src streamSource, want func(int) bool) (columnReader, error) {
	if !want(node.ID) {
		return nullColumnReader{}, nil
	}
	k := node.Type.Kind
	present, err := newPresentReader(src, node.ID)
	if err != nil {
		return nil, err
	}
	switch {
	case k.IsInteger() || k == types.Timestamp:
		raw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		return &intColumnReader{present: present, data: stream.NewIntReader(raw, 0)}, nil
	case k.IsFloating():
		raw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		return &doubleColumnReader{present: present, data: stream.NewByteReader(raw, 0)}, nil
	case k == types.Boolean:
		raw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		return &boolColumnReader{present: present, data: stream.NewBitFieldReader(raw, 0)}, nil
	case k == types.String:
		return buildStringReader(node, src, present)
	case k == types.Binary:
		dataRaw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		lenRaw, _, err := src.fetch(node.ID, stream.Length)
		if err != nil {
			return nil, err
		}
		return &binaryColumnReader{
			present: present,
			data:    stream.NewByteReader(dataRaw, 0),
			length:  stream.NewIntReader(lenRaw, 0),
		}, nil
	case k == types.Struct:
		r := &structColumnReader{present: present}
		for _, c := range node.Children {
			cr, err := buildColumnReaderFiltered(c, src, want)
			if err != nil {
				return nil, err
			}
			r.children = append(r.children, cr)
		}
		return r, nil
	case k == types.Array:
		lenRaw, _, err := src.fetch(node.ID, stream.Length)
		if err != nil {
			return nil, err
		}
		child, err := buildColumnReaderFiltered(node.Children[0], src, want)
		if err != nil {
			return nil, err
		}
		return &arrayColumnReader{
			present: present,
			length:  stream.NewIntReader(lenRaw, 0),
			child:   child,
		}, nil
	case k == types.Map:
		lenRaw, _, err := src.fetch(node.ID, stream.Length)
		if err != nil {
			return nil, err
		}
		keys, err := buildColumnReaderFiltered(node.Children[0], src, want)
		if err != nil {
			return nil, err
		}
		values, err := buildColumnReaderFiltered(node.Children[1], src, want)
		if err != nil {
			return nil, err
		}
		return &mapColumnReader{
			present: present,
			length:  stream.NewIntReader(lenRaw, 0),
			keys:    keys,
			values:  values,
		}, nil
	case k == types.Union:
		tagRaw, _, err := src.fetch(node.ID, stream.Secondary)
		if err != nil {
			return nil, err
		}
		r := &unionColumnReader{
			present: present,
			tags:    stream.NewRunLengthByteReader(tagRaw, 0),
		}
		for _, c := range node.Children {
			cr, err := buildColumnReaderFiltered(c, src, want)
			if err != nil {
				return nil, err
			}
			r.children = append(r.children, cr)
		}
		return r, nil
	}
	return nil, fmt.Errorf("orc: unsupported column kind %s", k)
}

func buildStringReader(node *types.ColumnNode, src streamSource, present presentReader) (columnReader, error) {
	enc := src.encodingOf(node.ID)
	if enc.Dictionary {
		idsRaw, _, err := src.fetch(node.ID, stream.Data)
		if err != nil {
			return nil, err
		}
		dictRaw, _, err := src.fetchWhole(node.ID, stream.DictionaryData)
		if err != nil {
			return nil, err
		}
		lenRaw, _, err := src.fetchWhole(node.ID, stream.Length)
		if err != nil {
			return nil, err
		}
		// Materialize the dictionary once per stripe.
		lengths := stream.NewIntReader(lenRaw, 0)
		dict := make([]string, 0, enc.DictSize)
		data := stream.NewByteReader(dictRaw, 0)
		for i := uint64(0); i < enc.DictSize; i++ {
			n, err := lengths.ReadInt()
			if err != nil {
				return nil, fmt.Errorf("orc: dictionary of column %d: %w", node.ID, err)
			}
			b, err := data.ReadN(int(n))
			if err != nil {
				return nil, fmt.Errorf("orc: dictionary of column %d: %w", node.ID, err)
			}
			dict = append(dict, string(b))
		}
		return &dictStringColumnReader{present: present, ids: stream.NewIntReader(idsRaw, 0), dict: dict}, nil
	}
	dataRaw, _, err := src.fetch(node.ID, stream.Data)
	if err != nil {
		return nil, err
	}
	lenRaw, _, err := src.fetch(node.ID, stream.Length)
	if err != nil {
		return nil, err
	}
	return &directStringColumnReader{
		present: present,
		data:    stream.NewByteReader(dataRaw, 0),
		length:  stream.NewIntReader(lenRaw, 0),
	}, nil
}

type intColumnReader struct {
	present presentReader
	data    *stream.IntReader
}

func (r *intColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return r.data.ReadInt()
}

type doubleColumnReader struct {
	present presentReader
	data    *stream.ByteReader
}

func (r *doubleColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	b, err := r.data.ReadN(8)
	if err != nil {
		return nil, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

type boolColumnReader struct {
	present presentReader
	data    *stream.BitFieldReader
}

func (r *boolColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return r.data.ReadBool()
}

type binaryColumnReader struct {
	present presentReader
	data    *stream.ByteReader
	length  *stream.IntReader
}

func (r *binaryColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	n, err := r.length.ReadInt()
	if err != nil {
		return nil, err
	}
	b, err := r.data.ReadN(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

type directStringColumnReader struct {
	present presentReader
	data    *stream.ByteReader
	length  *stream.IntReader
}

func (r *directStringColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	n, err := r.length.ReadInt()
	if err != nil {
		return nil, err
	}
	b, err := r.data.ReadN(int(n))
	if err != nil {
		return nil, err
	}
	return string(b), nil
}

type dictStringColumnReader struct {
	present presentReader
	ids     *stream.IntReader
	dict    []string
}

func (r *dictStringColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	id, err := r.ids.ReadInt()
	if err != nil {
		return nil, err
	}
	if id < 0 || id >= int64(len(r.dict)) {
		return nil, fmt.Errorf("orc: dictionary id %d out of range [0,%d)", id, len(r.dict))
	}
	return r.dict[id], nil
}

type structColumnReader struct {
	present  presentReader
	children []columnReader
}

func (r *structColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	out := make([]any, len(r.children))
	for i, c := range r.children {
		v, err := c.next()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type arrayColumnReader struct {
	present presentReader
	length  *stream.IntReader
	child   columnReader
}

func (r *arrayColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	n, err := r.length.ReadInt()
	if err != nil {
		return nil, err
	}
	out := make([]any, n)
	for i := range out {
		v, err := r.child.next()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

type mapColumnReader struct {
	present presentReader
	length  *stream.IntReader
	keys    columnReader
	values  columnReader
}

func (r *mapColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	n, err := r.length.ReadInt()
	if err != nil {
		return nil, err
	}
	mv := &types.MapValue{}
	for i := int64(0); i < n; i++ {
		k, err := r.keys.next()
		if err != nil {
			return nil, err
		}
		v, err := r.values.next()
		if err != nil {
			return nil, err
		}
		mv.Keys = append(mv.Keys, k)
		mv.Values = append(mv.Values, v)
	}
	return mv, nil
}

type unionColumnReader struct {
	present  presentReader
	tags     *stream.RunLengthByteReader
	children []columnReader
}

func (r *unionColumnReader) next() (any, error) {
	ok, err := r.present.isPresent()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	tag, err := r.tags.ReadByte()
	if err != nil {
		return nil, err
	}
	if int(tag) >= len(r.children) {
		return nil, fmt.Errorf("orc: union tag %d out of range [0,%d)", tag, len(r.children))
	}
	v, err := r.children[tag].next()
	if err != nil {
		return nil, err
	}
	return &types.UnionValue{Tag: int(tag), Value: v}, nil
}
