// colwriter.go implements the per-type column writers of ORC File (§4.3):
// each leaf column is stored in one or more primitive streams with
// type-specific encodings, and complex columns are decomposed into child
// columns per Table 1, with internal columns recording structural metadata.
package orc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/orc/stream"
	"repro/internal/types"
)

// finishedStream is one stream of a column after stripe finalization: its
// raw (uncompressed) bytes and the byte offsets at which each index group
// after the first begins.
type finishedStream struct {
	kind stream.Kind
	raw  []byte
	cuts []uint64 // len == numGroups-1; group g>0 starts at cuts[g-1]
}

// columnWriter is the per-column write path. The Writer drives all columns
// in lockstep: startGroup at each index-group boundary, write per row (for
// top-level columns; nested writers are driven by their parents), finish at
// stripe flush.
type columnWriter interface {
	// write appends one value; nil is NULL.
	write(v any) error
	// startGroup opens a new index group: flushes encoder runs, records
	// positions, and starts fresh group statistics.
	startGroup()
	// finish flushes encoders and returns the streams in directory
	// order. Writers may omit streams (e.g. the present stream when the
	// stripe has no nulls).
	finish() []finishedStream
	encoding() ColumnEncoding
	groupStats() []*ColumnStats
	stripeStats() *ColumnStats
	fileStats() *ColumnStats
	estimatedSize() int64
	// reset prepares the writer for the next stripe; file stats persist.
	reset()
}

// columnBase carries the state shared by all column writers.
type columnBase struct {
	node    *types.ColumnNode
	present stream.BitFieldWriter
	hasNull bool // any null in current stripe

	groups  []*ColumnStats
	stripe  *ColumnStats
	file    *ColumnStats
	current *ColumnStats
}

func newColumnBase(node *types.ColumnNode) columnBase {
	k := node.Type.Kind
	return columnBase{
		node:   node,
		stripe: newStatsFor(k),
		file:   newStatsFor(k),
	}
}

func (b *columnBase) openGroup() {
	b.present.FlushRun()
	b.current = newStatsFor(b.node.Type.Kind)
	b.groups = append(b.groups, b.current)
}

func (b *columnBase) recordNull() {
	b.present.WriteBool(false)
	b.hasNull = true
	b.current.Update(nil)
}

func (b *columnBase) recordPresent() {
	b.present.WriteBool(true)
}

func (b *columnBase) groupStats() []*ColumnStats { return b.groups }
func (b *columnBase) stripeStats() *ColumnStats  { return b.stripe }
func (b *columnBase) fileStats() *ColumnStats    { return b.file }

// finalizeStats merges group stats into stripe stats and stripe into file.
func (b *columnBase) finalizeStats() {
	for _, g := range b.groups {
		b.stripe.Merge(g)
	}
	b.file.Merge(b.stripe)
}

func (b *columnBase) resetBase() {
	b.present.Reset()
	b.hasNull = false
	b.groups = nil
	b.stripe = newStatsFor(b.node.Type.Kind)
	b.current = nil
}

// assembleStreams builds the finished stream list, dropping the present
// stream when the stripe contains no nulls (the encoding readers rely on
// the stream directory to detect this).
func (b *columnBase) assembleStreams(presentPositions []uint64, dataStreams []finishedStream) []finishedStream {
	if !b.hasNull {
		return dataStreams
	}
	b.present.FlushRun()
	out := []finishedStream{{kind: stream.Present, raw: b.present.Bytes(), cuts: presentPositions}}
	return append(out, dataStreams...)
}

// positionTracker accumulates per-group positions for one stream.
type positionTracker struct {
	positions []uint64 // len == numGroups; positions[0] == 0
}

func (p *positionTracker) mark(length int) { p.positions = append(p.positions, uint64(length)) }

// cuts returns group-start offsets excluding group 0.
func (p *positionTracker) cuts() []uint64 {
	if len(p.positions) <= 1 {
		return nil
	}
	return p.positions[1:]
}

// newColumnWriter builds the writer tree for a column node.
func newColumnWriter(node *types.ColumnNode, opts *WriterOptions) (columnWriter, error) {
	k := node.Type.Kind
	switch {
	case k.IsInteger() || k == types.Timestamp:
		return &intColumnWriter{columnBase: newColumnBase(node)}, nil
	case k.IsFloating():
		return &doubleColumnWriter{columnBase: newColumnBase(node)}, nil
	case k == types.Boolean:
		return &boolColumnWriter{columnBase: newColumnBase(node)}, nil
	case k == types.String:
		return &stringColumnWriter{
			columnBase: newColumnBase(node),
			threshold:  opts.DictionaryThreshold,
			dict:       make(map[string]int),
		}, nil
	case k == types.Binary:
		return &binaryColumnWriter{columnBase: newColumnBase(node)}, nil
	case k == types.Struct:
		w := &structColumnWriter{columnBase: newColumnBase(node)}
		for _, c := range node.Children {
			cw, err := newColumnWriter(c, opts)
			if err != nil {
				return nil, err
			}
			w.children = append(w.children, cw)
		}
		return w, nil
	case k == types.Array:
		child, err := newColumnWriter(node.Children[0], opts)
		if err != nil {
			return nil, err
		}
		return &arrayColumnWriter{columnBase: newColumnBase(node), child: child}, nil
	case k == types.Map:
		kw, err := newColumnWriter(node.Children[0], opts)
		if err != nil {
			return nil, err
		}
		vw, err := newColumnWriter(node.Children[1], opts)
		if err != nil {
			return nil, err
		}
		return &mapColumnWriter{columnBase: newColumnBase(node), keys: kw, values: vw}, nil
	case k == types.Union:
		w := &unionColumnWriter{columnBase: newColumnBase(node)}
		for _, c := range node.Children {
			cw, err := newColumnWriter(c, opts)
			if err != nil {
				return nil, err
			}
			w.children = append(w.children, cw)
		}
		return w, nil
	}
	return nil, fmt.Errorf("orc: unsupported column kind %s", k)
}

// collectWriters appends w and all descendants in column-id (pre-order)
// order, matching the column tree.
func collectWriters(w columnWriter, out *[]columnWriter) {
	*out = append(*out, w)
	switch t := w.(type) {
	case *structColumnWriter:
		for _, c := range t.children {
			collectWriters(c, out)
		}
	case *arrayColumnWriter:
		collectWriters(t.child, out)
	case *mapColumnWriter:
		collectWriters(t.keys, out)
		collectWriters(t.values, out)
	case *unionColumnWriter:
		for _, c := range t.children {
			collectWriters(c, out)
		}
	}
}

// --- Integer (paper: one bit-field null stream + one integer stream) ---

type intColumnWriter struct {
	columnBase
	data       stream.IntWriter
	presentPos positionTracker
	dataPos    positionTracker
}

func (w *intColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	x, ok := v.(int64)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not int64", w.node.ID, w.node.Type, v)
	}
	w.recordPresent()
	w.data.WriteInt(x)
	w.current.Update(x)
	return nil
}

func (w *intColumnWriter) startGroup() {
	w.openGroup()
	w.data.FlushRun()
	w.presentPos.mark(w.present.Len())
	w.dataPos.mark(w.data.Len())
}

func (w *intColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	w.data.FlushRun()
	return w.assembleStreams(w.presentPos.cuts(),
		[]finishedStream{{kind: stream.Data, raw: w.data.Bytes(), cuts: w.dataPos.cuts()}})
}

func (w *intColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *intColumnWriter) estimatedSize() int64 {
	return int64(w.data.Len()) + int64(w.present.Len()) + 64
}

func (w *intColumnWriter) reset() {
	w.resetBase()
	w.data.Reset()
	w.presentPos = positionTracker{}
	w.dataPos = positionTracker{}
}

// --- Double (byte stream of fixed 8-byte IEEE754 values) ---

type doubleColumnWriter struct {
	columnBase
	data       stream.ByteWriter
	presentPos positionTracker
	dataPos    positionTracker
}

func (w *doubleColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	x, ok := v.(float64)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not float64", w.node.ID, w.node.Type, v)
	}
	w.recordPresent()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
	w.data.Put(buf[:])
	w.current.Update(x)
	return nil
}

func (w *doubleColumnWriter) startGroup() {
	w.openGroup()
	w.presentPos.mark(w.present.Len())
	w.dataPos.mark(w.data.Len())
}

func (w *doubleColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	return w.assembleStreams(w.presentPos.cuts(),
		[]finishedStream{{kind: stream.Data, raw: w.data.Bytes(), cuts: w.dataPos.cuts()}})
}

func (w *doubleColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *doubleColumnWriter) estimatedSize() int64 {
	return int64(w.data.Len()) + int64(w.present.Len()) + 64
}

func (w *doubleColumnWriter) reset() {
	w.resetBase()
	w.data.Reset()
	w.presentPos = positionTracker{}
	w.dataPos = positionTracker{}
}

// --- Boolean (bit-field data stream) ---

type boolColumnWriter struct {
	columnBase
	data       stream.BitFieldWriter
	presentPos positionTracker
	dataPos    positionTracker
}

func (w *boolColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	x, ok := v.(bool)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not bool", w.node.ID, w.node.Type, v)
	}
	w.recordPresent()
	w.data.WriteBool(x)
	w.current.Update(x)
	return nil
}

func (w *boolColumnWriter) startGroup() {
	w.openGroup()
	w.data.FlushRun()
	w.presentPos.mark(w.present.Len())
	w.dataPos.mark(w.data.Len())
}

func (w *boolColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	w.data.FlushRun()
	return w.assembleStreams(w.presentPos.cuts(),
		[]finishedStream{{kind: stream.Data, raw: w.data.Bytes(), cuts: w.dataPos.cuts()}})
}

func (w *boolColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *boolColumnWriter) estimatedSize() int64 {
	return int64(w.data.Len()) + int64(w.present.Len()) + 64
}

func (w *boolColumnWriter) reset() {
	w.resetBase()
	w.data.Reset()
	w.presentPos = positionTracker{}
	w.dataPos = positionTracker{}
}

// --- Binary (byte stream + length integer stream) ---

type binaryColumnWriter struct {
	columnBase
	data       stream.ByteWriter
	length     stream.IntWriter
	presentPos positionTracker
	dataPos    positionTracker
	lengthPos  positionTracker
}

func (w *binaryColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	x, ok := v.([]byte)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not []byte", w.node.ID, w.node.Type, v)
	}
	w.recordPresent()
	w.data.Put(x)
	w.length.WriteInt(int64(len(x)))
	w.current.Update(x)
	return nil
}

func (w *binaryColumnWriter) startGroup() {
	w.openGroup()
	w.length.FlushRun()
	w.presentPos.mark(w.present.Len())
	w.dataPos.mark(w.data.Len())
	w.lengthPos.mark(w.length.Len())
}

func (w *binaryColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	w.length.FlushRun()
	return w.assembleStreams(w.presentPos.cuts(), []finishedStream{
		{kind: stream.Data, raw: w.data.Bytes(), cuts: w.dataPos.cuts()},
		{kind: stream.Length, raw: w.length.Bytes(), cuts: w.lengthPos.cuts()},
	})
}

func (w *binaryColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *binaryColumnWriter) estimatedSize() int64 {
	return int64(w.data.Len()) + int64(w.length.Len()) + int64(w.present.Len()) + 64
}

func (w *binaryColumnWriter) reset() {
	w.resetBase()
	w.data.Reset()
	w.length.Reset()
	w.presentPos = positionTracker{}
	w.dataPos = positionTracker{}
	w.lengthPos = positionTracker{}
}

// --- Struct (present stream only; fields are child columns) ---

type structColumnWriter struct {
	columnBase
	children   []columnWriter
	presentPos positionTracker
}

func (w *structColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	fields, ok := v.([]any)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not []any", w.node.ID, w.node.Type, v)
	}
	if len(fields) != len(w.children) {
		return fmt.Errorf("orc: column %d: struct has %d fields, want %d", w.node.ID, len(fields), len(w.children))
	}
	w.recordPresent()
	w.current.CountOnly()
	for i, c := range w.children {
		if err := c.write(fields[i]); err != nil {
			return err
		}
	}
	return nil
}

func (w *structColumnWriter) startGroup() {
	w.openGroup()
	w.presentPos.mark(w.present.Len())
}

func (w *structColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	return w.assembleStreams(w.presentPos.cuts(), nil)
}

func (w *structColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *structColumnWriter) estimatedSize() int64 {
	n := int64(w.present.Len()) + 64
	for _, c := range w.children {
		n += c.estimatedSize()
	}
	return n
}

func (w *structColumnWriter) reset() {
	w.resetBase()
	w.presentPos = positionTracker{}
	for _, c := range w.children {
		c.reset()
	}
}

// --- Array (length stream records element counts; internal column) ---

type arrayColumnWriter struct {
	columnBase
	child      columnWriter
	length     stream.IntWriter
	presentPos positionTracker
	lengthPos  positionTracker
}

func (w *arrayColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	arr, ok := v.([]any)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not []any", w.node.ID, w.node.Type, v)
	}
	w.recordPresent()
	w.current.CountOnly()
	w.length.WriteInt(int64(len(arr)))
	for _, e := range arr {
		if err := w.child.write(e); err != nil {
			return err
		}
	}
	return nil
}

func (w *arrayColumnWriter) startGroup() {
	w.openGroup()
	w.length.FlushRun()
	w.presentPos.mark(w.present.Len())
	w.lengthPos.mark(w.length.Len())
}

func (w *arrayColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	w.length.FlushRun()
	return w.assembleStreams(w.presentPos.cuts(),
		[]finishedStream{{kind: stream.Length, raw: w.length.Bytes(), cuts: w.lengthPos.cuts()}})
}

func (w *arrayColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *arrayColumnWriter) estimatedSize() int64 {
	return int64(w.length.Len()) + int64(w.present.Len()) + 64 + w.child.estimatedSize()
}

func (w *arrayColumnWriter) reset() {
	w.resetBase()
	w.length.Reset()
	w.presentPos = positionTracker{}
	w.lengthPos = positionTracker{}
	w.child.reset()
}

// --- Map (length stream records entry counts; key/value child columns) ---

type mapColumnWriter struct {
	columnBase
	keys       columnWriter
	values     columnWriter
	length     stream.IntWriter
	presentPos positionTracker
	lengthPos  positionTracker
}

func (w *mapColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	mv, ok := v.(*types.MapValue)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not *types.MapValue", w.node.ID, w.node.Type, v)
	}
	w.recordPresent()
	w.current.CountOnly()
	w.length.WriteInt(int64(mv.Len()))
	for i := range mv.Keys {
		if err := w.keys.write(mv.Keys[i]); err != nil {
			return err
		}
		if err := w.values.write(mv.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

func (w *mapColumnWriter) startGroup() {
	w.openGroup()
	w.length.FlushRun()
	w.presentPos.mark(w.present.Len())
	w.lengthPos.mark(w.length.Len())
}

func (w *mapColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	w.length.FlushRun()
	return w.assembleStreams(w.presentPos.cuts(),
		[]finishedStream{{kind: stream.Length, raw: w.length.Bytes(), cuts: w.lengthPos.cuts()}})
}

func (w *mapColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *mapColumnWriter) estimatedSize() int64 {
	return int64(w.length.Len()) + int64(w.present.Len()) + 64 +
		w.keys.estimatedSize() + w.values.estimatedSize()
}

func (w *mapColumnWriter) reset() {
	w.resetBase()
	w.length.Reset()
	w.presentPos = positionTracker{}
	w.lengthPos = positionTracker{}
	w.keys.reset()
	w.values.reset()
}

// --- Union (tag stream selects the child column per value) ---

type unionColumnWriter struct {
	columnBase
	children   []columnWriter
	tags       stream.RunLengthByteWriter
	presentPos positionTracker
	tagPos     positionTracker
}

func (w *unionColumnWriter) write(v any) error {
	if v == nil {
		w.recordNull()
		return nil
	}
	uv, ok := v.(*types.UnionValue)
	if !ok {
		return fmt.Errorf("orc: column %d (%s): %T is not *types.UnionValue", w.node.ID, w.node.Type, v)
	}
	if uv.Tag < 0 || uv.Tag >= len(w.children) {
		return fmt.Errorf("orc: column %d: union tag %d out of range", w.node.ID, uv.Tag)
	}
	w.recordPresent()
	w.current.CountOnly()
	w.tags.Put(byte(uv.Tag))
	return w.children[uv.Tag].write(uv.Value)
}

func (w *unionColumnWriter) startGroup() {
	w.openGroup()
	w.tags.FlushRun()
	w.presentPos.mark(w.present.Len())
	w.tagPos.mark(w.tags.Len())
}

func (w *unionColumnWriter) finish() []finishedStream {
	w.finalizeStats()
	w.tags.FlushRun()
	return w.assembleStreams(w.presentPos.cuts(),
		[]finishedStream{{kind: stream.Secondary, raw: w.tags.Bytes(), cuts: w.tagPos.cuts()}})
}

func (w *unionColumnWriter) encoding() ColumnEncoding { return ColumnEncoding{} }

func (w *unionColumnWriter) estimatedSize() int64 {
	n := int64(w.tags.Len()) + int64(w.present.Len()) + 64
	for _, c := range w.children {
		n += c.estimatedSize()
	}
	return n
}

func (w *unionColumnWriter) reset() {
	w.resetBase()
	w.tags.Reset()
	w.presentPos = positionTracker{}
	w.tagPos = positionTracker{}
	for _, c := range w.children {
		c.reset()
	}
}
