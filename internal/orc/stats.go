// stats.go implements the data statistics ORC File records at file, stripe
// and index-group level (paper §4.2): number of values, min, max, sum, and
// length for text/binary types.
package orc

import (
	"repro/internal/types"
)

// IntStats aggregates integer-family columns.
type IntStats struct {
	Min, Max, Sum int64
	hasValue      bool
}

// DoubleStats aggregates float/double columns.
type DoubleStats struct {
	Min, Max, Sum float64
	hasValue      bool
}

// StringStats aggregates string columns; TotalLength is the "length"
// statistic the paper lists for text types.
type StringStats struct {
	Min, Max    string
	TotalLength int64
	hasValue    bool
}

// BoolStats aggregates boolean columns.
type BoolStats struct {
	TrueCount int64
}

// BinaryStats aggregates binary columns.
type BinaryStats struct {
	TotalLength int64
}

// ColumnStats holds the statistics of one column over some extent (an index
// group, a stripe, or the whole file). Exactly one of the typed sub-stat
// pointers is set for leaf columns; internal columns track only counts.
type ColumnStats struct {
	NumValues int64
	HasNull   bool
	Ints      *IntStats
	Doubles   *DoubleStats
	Strings   *StringStats
	Bools     *BoolStats
	Binary    *BinaryStats
}

// newStatsFor allocates stats with the right typed sub-stat for a column
// kind.
func newStatsFor(k types.Kind) *ColumnStats {
	cs := &ColumnStats{}
	switch {
	case k.IsInteger() || k == types.Timestamp:
		cs.Ints = &IntStats{}
	case k.IsFloating():
		cs.Doubles = &DoubleStats{}
	case k == types.String:
		cs.Strings = &StringStats{}
	case k == types.Boolean:
		cs.Bools = &BoolStats{}
	case k == types.Binary:
		cs.Binary = &BinaryStats{}
	}
	return cs
}

// Update folds one value (nil = NULL) into the stats.
func (cs *ColumnStats) Update(v any) {
	if v == nil {
		cs.HasNull = true
		return
	}
	cs.NumValues++
	switch {
	case cs.Ints != nil:
		x := v.(int64)
		s := cs.Ints
		if !s.hasValue || x < s.Min {
			s.Min = x
		}
		if !s.hasValue || x > s.Max {
			s.Max = x
		}
		s.Sum += x
		s.hasValue = true
	case cs.Doubles != nil:
		x := v.(float64)
		s := cs.Doubles
		if !s.hasValue || x < s.Min {
			s.Min = x
		}
		if !s.hasValue || x > s.Max {
			s.Max = x
		}
		s.Sum += x
		s.hasValue = true
	case cs.Strings != nil:
		x := v.(string)
		s := cs.Strings
		if !s.hasValue || x < s.Min {
			s.Min = x
		}
		if !s.hasValue || x > s.Max {
			s.Max = x
		}
		s.TotalLength += int64(len(x))
		s.hasValue = true
	case cs.Bools != nil:
		if v.(bool) {
			cs.Bools.TrueCount++
		}
	case cs.Binary != nil:
		cs.Binary.TotalLength += int64(len(v.([]byte)))
	}
}

// CountOnly increments the value count without typed aggregation; internal
// (struct/array/map/union) columns use it.
func (cs *ColumnStats) CountOnly() { cs.NumValues++ }

// Merge folds other into cs; both must describe the same column.
func (cs *ColumnStats) Merge(other *ColumnStats) {
	cs.NumValues += other.NumValues
	cs.HasNull = cs.HasNull || other.HasNull
	switch {
	case cs.Ints != nil && other.Ints != nil:
		if other.Ints.hasValue {
			if !cs.Ints.hasValue || other.Ints.Min < cs.Ints.Min {
				cs.Ints.Min = other.Ints.Min
			}
			if !cs.Ints.hasValue || other.Ints.Max > cs.Ints.Max {
				cs.Ints.Max = other.Ints.Max
			}
			cs.Ints.Sum += other.Ints.Sum
			cs.Ints.hasValue = true
		}
	case cs.Doubles != nil && other.Doubles != nil:
		if other.Doubles.hasValue {
			if !cs.Doubles.hasValue || other.Doubles.Min < cs.Doubles.Min {
				cs.Doubles.Min = other.Doubles.Min
			}
			if !cs.Doubles.hasValue || other.Doubles.Max > cs.Doubles.Max {
				cs.Doubles.Max = other.Doubles.Max
			}
			cs.Doubles.Sum += other.Doubles.Sum
			cs.Doubles.hasValue = true
		}
	case cs.Strings != nil && other.Strings != nil:
		if other.Strings.hasValue {
			if !cs.Strings.hasValue || other.Strings.Min < cs.Strings.Min {
				cs.Strings.Min = other.Strings.Min
			}
			if !cs.Strings.hasValue || other.Strings.Max > cs.Strings.Max {
				cs.Strings.Max = other.Strings.Max
			}
			cs.Strings.TotalLength += other.Strings.TotalLength
			cs.Strings.hasValue = true
		}
	case cs.Bools != nil && other.Bools != nil:
		cs.Bools.TrueCount += other.Bools.TrueCount
	case cs.Binary != nil && other.Binary != nil:
		cs.Binary.TotalLength += other.Binary.TotalLength
	}
}

// HasValues reports whether any non-null value was recorded.
func (cs *ColumnStats) HasValues() bool { return cs.NumValues > 0 }

// Typed sub-stat tags used in the serialized form.
const (
	statNone = iota
	statInt
	statDouble
	statString
	statBool
	statBinary
)

func encodeStats(e *metaEnc, cs *ColumnStats) {
	if cs == nil {
		cs = &ColumnStats{}
	}
	e.i64(cs.NumValues)
	e.bool(cs.HasNull)
	switch {
	case cs.Ints != nil:
		e.u64(statInt)
		e.bool(cs.Ints.hasValue)
		e.i64(cs.Ints.Min)
		e.i64(cs.Ints.Max)
		e.i64(cs.Ints.Sum)
	case cs.Doubles != nil:
		e.u64(statDouble)
		e.bool(cs.Doubles.hasValue)
		e.f64(cs.Doubles.Min)
		e.f64(cs.Doubles.Max)
		e.f64(cs.Doubles.Sum)
	case cs.Strings != nil:
		e.u64(statString)
		e.bool(cs.Strings.hasValue)
		e.str(cs.Strings.Min)
		e.str(cs.Strings.Max)
		e.i64(cs.Strings.TotalLength)
	case cs.Bools != nil:
		e.u64(statBool)
		e.i64(cs.Bools.TrueCount)
	case cs.Binary != nil:
		e.u64(statBinary)
		e.i64(cs.Binary.TotalLength)
	default:
		e.u64(statNone)
	}
}

func decodeStats(d *metaDec) *ColumnStats {
	cs := &ColumnStats{}
	cs.NumValues = d.i64()
	cs.HasNull = d.bool()
	switch d.u64() {
	case statInt:
		cs.Ints = &IntStats{}
		cs.Ints.hasValue = d.bool()
		cs.Ints.Min = d.i64()
		cs.Ints.Max = d.i64()
		cs.Ints.Sum = d.i64()
	case statDouble:
		cs.Doubles = &DoubleStats{}
		cs.Doubles.hasValue = d.bool()
		cs.Doubles.Min = d.f64()
		cs.Doubles.Max = d.f64()
		cs.Doubles.Sum = d.f64()
	case statString:
		cs.Strings = &StringStats{}
		cs.Strings.hasValue = d.bool()
		cs.Strings.Min = d.str()
		cs.Strings.Max = d.str()
		cs.Strings.TotalLength = d.i64()
	case statBool:
		cs.Bools = &BoolStats{}
		cs.Bools.TrueCount = d.i64()
	case statBinary:
		cs.Binary = &BinaryStats{}
		cs.Binary.TotalLength = d.i64()
	}
	return cs
}
