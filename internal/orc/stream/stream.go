// Package stream implements the four primitive stream types of ORC File
// (paper §4.3): byte streams, run-length byte streams, integer streams with
// run-length/delta encoding, and bit-field streams backed by run-length
// byte streams.
//
// Every encoder supports FlushRun, which terminates any pending run so that
// the current byte length is a valid decoder entry point. The ORC writer
// calls it at index-group boundaries, making row-index position pointers
// plain byte offsets (paper §4.2).
package stream

import (
	"encoding/binary"
	"fmt"
)

// Kind identifies the role of a stream within a column (recorded in stripe
// footers).
type Kind int

// Stream kinds. Present marks the null bit-field stream; Data, Length and
// DictionaryData follow the paper's description of Int and String columns;
// Secondary carries union tags.
const (
	Present Kind = iota
	Data
	Length
	DictionaryData
	Secondary
)

// String returns the stream-kind name used in stripe footers and orcdump.
func (k Kind) String() string {
	switch k {
	case Present:
		return "PRESENT"
	case Data:
		return "DATA"
	case Length:
		return "LENGTH"
	case DictionaryData:
		return "DICTIONARY_DATA"
	case Secondary:
		return "SECONDARY"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Encoder is the interface shared by all stream writers; the ORC column
// writers drive them generically at index-group and stripe boundaries.
type Encoder interface {
	// FlushRun terminates pending run state so Len is a decoder entry
	// point.
	FlushRun()
	// Bytes returns the encoded contents accumulated so far.
	Bytes() []byte
	// Len returns the current encoded length.
	Len() int
	// Reset clears the encoder for the next stripe.
	Reset()
}

// ByteWriter is the plain byte stream: a sequence of bytes with no encoding.
type ByteWriter struct {
	buf []byte
}

// Put appends raw bytes.
func (w *ByteWriter) Put(p []byte) { w.buf = append(w.buf, p...) }

// PutByte appends one raw byte.
func (w *ByteWriter) PutByte(b byte) { w.buf = append(w.buf, b) }

// FlushRun is a no-op; byte streams have no run state.
func (w *ByteWriter) FlushRun() {}

// Bytes returns the encoded stream contents.
func (w *ByteWriter) Bytes() []byte { return w.buf }

// Len returns the current encoded length, a valid decoder entry point.
func (w *ByteWriter) Len() int { return len(w.buf) }

// Reset clears the stream for the next stripe.
func (w *ByteWriter) Reset() { w.buf = w.buf[:0] }

// ByteReader decodes a plain byte stream.
type ByteReader struct {
	buf []byte
	pos int
}

// NewByteReader reads from buf starting at offset off.
func NewByteReader(buf []byte, off int) *ByteReader { return &ByteReader{buf: buf, pos: off} }

// ReadN returns the next n bytes without copying.
func (r *ByteReader) ReadN(n int) ([]byte, error) {
	if r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("stream: byte stream exhausted (need %d, have %d)", n, len(r.buf)-r.pos)
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// ReadByte returns the next byte.
func (r *ByteReader) ReadByte() (byte, error) {
	b, err := r.ReadN(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

const (
	// Control ranges mirror ORC RLE v1: a control byte c in [0,127]
	// encodes a run of c+minRepeat values; c in [128,255] encodes
	// 256-c literal values.
	minRepeat     = 3
	maxRepeat     = 127 + minRepeat
	maxLiteralLen = 128
	minDelta      = -128
	maxDelta      = 127
)

// RunLengthByteWriter encodes a byte sequence with run-length encoding:
// repeated bytes are stored as (count, value) pairs, literals verbatim.
type RunLengthByteWriter struct {
	buf     []byte
	literal []byte
	runByte byte
	runLen  int
}

// Put appends one logical byte.
func (w *RunLengthByteWriter) Put(b byte) {
	if w.runLen > 0 && b == w.runByte {
		w.runLen++
		if w.runLen == maxRepeat {
			w.emitRun()
		}
		return
	}
	if w.runLen >= minRepeat {
		w.emitRun()
	} else {
		for i := 0; i < w.runLen; i++ {
			w.pushLiteral(w.runByte)
		}
	}
	w.runByte, w.runLen = b, 1
}

func (w *RunLengthByteWriter) pushLiteral(b byte) {
	w.literal = append(w.literal, b)
	if len(w.literal) == maxLiteralLen {
		w.emitLiteral()
	}
}

func (w *RunLengthByteWriter) emitRun() {
	if w.runLen == 0 {
		return
	}
	if w.runLen < minRepeat {
		for i := 0; i < w.runLen; i++ {
			w.pushLiteral(w.runByte)
		}
		w.runLen = 0
		return
	}
	w.emitLiteral()
	w.buf = append(w.buf, byte(w.runLen-minRepeat), w.runByte)
	w.runLen = 0
}

func (w *RunLengthByteWriter) emitLiteral() {
	if len(w.literal) == 0 {
		return
	}
	w.buf = append(w.buf, byte(256-len(w.literal)))
	w.buf = append(w.buf, w.literal...)
	w.literal = w.literal[:0]
}

// FlushRun terminates pending runs/literals so Len is a decode entry point.
func (w *RunLengthByteWriter) FlushRun() {
	w.emitRun()
	w.emitLiteral()
}

// Bytes returns the encoded contents; callers must FlushRun first.
func (w *RunLengthByteWriter) Bytes() []byte { return w.buf }

// Len returns the encoded length after the last FlushRun.
func (w *RunLengthByteWriter) Len() int { return len(w.buf) }

// Reset clears all state for the next stripe.
func (w *RunLengthByteWriter) Reset() {
	w.buf = w.buf[:0]
	w.literal = w.literal[:0]
	w.runLen = 0
}

// RunLengthByteReader decodes a run-length byte stream.
type RunLengthByteReader struct {
	buf     []byte
	pos     int
	pending byte
	repeat  int
	literal []byte
	litPos  int
}

// NewRunLengthByteReader reads from buf starting at byte offset off.
func NewRunLengthByteReader(buf []byte, off int) *RunLengthByteReader {
	return &RunLengthByteReader{buf: buf, pos: off}
}

// ReadByte returns the next logical byte.
func (r *RunLengthByteReader) ReadByte() (byte, error) {
	if r.repeat > 0 {
		r.repeat--
		return r.pending, nil
	}
	if r.litPos < len(r.literal) {
		b := r.literal[r.litPos]
		r.litPos++
		return b, nil
	}
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("stream: run-length byte stream exhausted")
	}
	control := r.buf[r.pos]
	r.pos++
	if control < 128 {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("stream: truncated byte run")
		}
		r.pending = r.buf[r.pos]
		r.pos++
		r.repeat = int(control) + minRepeat - 1
		return r.pending, nil
	}
	n := 256 - int(control)
	if r.pos+n > len(r.buf) {
		return 0, fmt.Errorf("stream: truncated byte literal")
	}
	r.literal = r.buf[r.pos : r.pos+n]
	r.litPos = 1
	r.pos += n
	return r.literal[0], nil
}

// IntWriter is the integer stream (paper §4.3): sub-sequences of at least
// three values with a constant delta in [-128,127] are stored as
// (count, delta, base) runs; other values as literal zigzag varints. The
// choice between encodings is made per sub-sequence based on its pattern,
// following ORC RLE version 1.
type IntWriter struct {
	buf        []byte
	literals   [maxLiteralLen]int64
	numLit     int
	delta      int64
	repeat     bool
	tailRunLen int
}

// WriteInt appends one logical integer.
func (w *IntWriter) WriteInt(v int64) {
	switch {
	case w.numLit == 0:
		w.literals[0] = v
		w.numLit = 1
		w.tailRunLen = 1
	case w.repeat:
		if v == w.literals[0]+w.delta*int64(w.numLit) {
			w.numLit++
			if w.numLit == maxRepeat {
				w.emit()
			}
		} else {
			w.emit()
			w.literals[0] = v
			w.numLit = 1
			w.tailRunLen = 1
		}
	default:
		if w.tailRunLen == 1 || v != w.literals[w.numLit-1]+w.delta {
			d := v - w.literals[w.numLit-1]
			if d < minDelta || d > maxDelta {
				w.tailRunLen = 1
			} else {
				w.delta = d
				w.tailRunLen = 2
			}
		} else {
			w.tailRunLen++
		}
		if w.tailRunLen == minRepeat {
			// The current value plus the two preceding literals form a
			// run; emit any earlier literals and switch to repeat mode.
			if w.numLit+1 != minRepeat {
				w.numLit -= minRepeat - 1
				base := w.literals[w.numLit]
				w.emitLiterals()
				w.literals[0] = base
			}
			w.repeat = true
			w.numLit = minRepeat
		} else {
			w.literals[w.numLit] = v
			w.numLit++
			if w.numLit == maxLiteralLen {
				w.emit()
			}
		}
	}
}

func (w *IntWriter) emit() {
	if w.numLit == 0 {
		return
	}
	if w.repeat {
		w.buf = append(w.buf, byte(w.numLit-minRepeat), byte(int8(w.delta)))
		w.buf = binary.AppendVarint(w.buf, w.literals[0])
	} else {
		w.emitLiterals()
	}
	w.repeat = false
	w.numLit = 0
	w.tailRunLen = 0
}

func (w *IntWriter) emitLiterals() {
	if w.numLit == 0 {
		return
	}
	w.buf = append(w.buf, byte(256-w.numLit))
	for i := 0; i < w.numLit; i++ {
		w.buf = binary.AppendVarint(w.buf, w.literals[i])
	}
	w.numLit = 0
}

// FlushRun commits all pending values.
func (w *IntWriter) FlushRun() { w.emit() }

// Bytes returns the encoded contents; callers must FlushRun first.
func (w *IntWriter) Bytes() []byte { return w.buf }

// Len returns the encoded length after the last FlushRun.
func (w *IntWriter) Len() int { return len(w.buf) }

// Reset clears all state for the next stripe.
func (w *IntWriter) Reset() {
	w.buf = w.buf[:0]
	w.numLit = 0
	w.repeat = false
	w.tailRunLen = 0
}

// IntReader decodes an integer stream.
type IntReader struct {
	buf    []byte
	pos    int
	value  int64
	delta  int64
	repeat int
	numLit int
}

// NewIntReader reads from buf starting at byte offset off.
func NewIntReader(buf []byte, off int) *IntReader { return &IntReader{buf: buf, pos: off} }

// ReadInt returns the next logical integer.
func (r *IntReader) ReadInt() (int64, error) {
	if r.repeat > 0 {
		r.repeat--
		r.value += r.delta
		return r.value, nil
	}
	if r.numLit > 0 {
		r.numLit--
		return r.readVarint()
	}
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("stream: integer stream exhausted")
	}
	control := r.buf[r.pos]
	r.pos++
	if control < 128 {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("stream: truncated integer run")
		}
		r.delta = int64(int8(r.buf[r.pos]))
		r.pos++
		base, err := r.readVarint()
		if err != nil {
			return 0, err
		}
		r.value = base
		r.repeat = int(control) + minRepeat - 1
		return r.value, nil
	}
	r.numLit = 256 - int(control) - 1
	return r.readVarint()
}

func (r *IntReader) readVarint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("stream: bad varint in integer stream")
	}
	r.pos += n
	return v, nil
}

// BitFieldWriter stores booleans one bit at a time (msb first), backed by a
// run-length byte stream as the paper describes.
type BitFieldWriter struct {
	rle     RunLengthByteWriter
	current byte
	nbits   int
}

// WriteBool appends one logical bit.
func (w *BitFieldWriter) WriteBool(v bool) {
	w.current <<= 1
	if v {
		w.current |= 1
	}
	w.nbits++
	if w.nbits == 8 {
		w.rle.Put(w.current)
		w.current, w.nbits = 0, 0
	}
}

// FlushRun pads the partial byte with zero bits and terminates runs, making
// Len a decoder entry point (the bit cursor realigns to a byte boundary,
// which is why the ORC writer flushes exactly at index-group boundaries).
func (w *BitFieldWriter) FlushRun() {
	if w.nbits > 0 {
		w.current <<= uint(8 - w.nbits)
		w.rle.Put(w.current)
		w.current, w.nbits = 0, 0
	}
	w.rle.FlushRun()
}

// Bytes returns the encoded contents; callers must FlushRun first.
func (w *BitFieldWriter) Bytes() []byte { return w.rle.Bytes() }

// Len returns the encoded length after the last FlushRun.
func (w *BitFieldWriter) Len() int { return w.rle.Len() }

// Reset clears all state for the next stripe.
func (w *BitFieldWriter) Reset() {
	w.rle.Reset()
	w.current, w.nbits = 0, 0
}

// BitFieldReader decodes a bit-field stream.
type BitFieldReader struct {
	rle     *RunLengthByteReader
	current byte
	nbits   int
}

// NewBitFieldReader reads from buf starting at byte offset off; the offset
// must be an index-group entry point (bit cursor aligned to a byte).
func NewBitFieldReader(buf []byte, off int) *BitFieldReader {
	return &BitFieldReader{rle: NewRunLengthByteReader(buf, off)}
}

// ReadBool returns the next logical bit.
func (r *BitFieldReader) ReadBool() (bool, error) {
	if r.nbits == 0 {
		b, err := r.rle.ReadByte()
		if err != nil {
			return false, err
		}
		r.current = b
		r.nbits = 8
	}
	r.nbits--
	return r.current&(1<<uint(r.nbits)) != 0, nil
}
