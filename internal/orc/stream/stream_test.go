package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestByteStreamRoundTrip(t *testing.T) {
	var w ByteWriter
	w.Put([]byte("hello"))
	w.PutByte('!')
	r := NewByteReader(w.Bytes(), 0)
	got, err := r.ReadN(6)
	if err != nil || string(got) != "hello!" {
		t.Fatalf("got %q, %v", got, err)
	}
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("read past end succeeded")
	}
}

func TestByteStreamOffset(t *testing.T) {
	var w ByteWriter
	w.Put([]byte("0123456789"))
	r := NewByteReader(w.Bytes(), 4)
	b, err := r.ReadByte()
	if err != nil || b != '4' {
		t.Fatalf("got %c, %v", b, err)
	}
}

func runLengthByteRoundTrip(t *testing.T, vals []byte) {
	t.Helper()
	var w RunLengthByteWriter
	for _, v := range vals {
		w.Put(v)
	}
	w.FlushRun()
	r := NewRunLengthByteReader(w.Bytes(), 0)
	for i, want := range vals {
		got, err := r.ReadByte()
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("read past end succeeded")
	}
}

func TestRunLengthByteRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{1},
		{1, 2},
		{5, 5, 5},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5},
		{1, 1, 2, 2, 3, 3}, // short runs -> literals
		append(make([]byte, 500), 1, 2, 3),
	}
	for _, c := range cases {
		runLengthByteRoundTrip(t, c)
	}
	// Long random-ish mixture.
	rng := rand.New(rand.NewSource(1))
	mixed := make([]byte, 4096)
	for i := range mixed {
		if rng.Intn(3) == 0 {
			mixed[i] = byte(rng.Intn(4))
		} else if i > 0 {
			mixed[i] = mixed[i-1]
		}
	}
	runLengthByteRoundTrip(t, mixed)
}

func TestRunLengthByteCompresses(t *testing.T) {
	var w RunLengthByteWriter
	for i := 0; i < 10000; i++ {
		w.Put(42)
	}
	w.FlushRun()
	if w.Len() > 200 {
		t.Errorf("10000 identical bytes encoded to %d bytes", w.Len())
	}
}

func intRoundTrip(t *testing.T, vals []int64) []byte {
	t.Helper()
	var w IntWriter
	for _, v := range vals {
		w.WriteInt(v)
	}
	w.FlushRun()
	r := NewIntReader(w.Bytes(), 0)
	for i, want := range vals {
		got, err := r.ReadInt()
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadInt(); err == nil {
		t.Fatal("read past end succeeded")
	}
	return w.Bytes()
}

func TestIntStreamRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{7, 7},
		{1, 2, 3, 4, 5},           // delta run
		{100, 100, 100, 100},      // constant run
		{5, 4, 3, 2, 1, 0, -1},    // negative delta
		{1 << 40, -(1 << 40), 17}, // literals with big values
		{1, 2, 3, 999, 1000, 1001, 5, 5, 5, 5, -3},
		{0, 200, 400, 600}, // delta 200 out of byte range -> literals
	}
	for _, c := range cases {
		intRoundTrip(t, c)
	}
}

func TestIntStreamLongSequences(t *testing.T) {
	// Monotonic sequence far longer than a max run.
	seq := make([]int64, 5000)
	for i := range seq {
		seq[i] = int64(i * 3)
	}
	enc := intRoundTrip(t, seq)
	if len(enc) > 250 {
		t.Errorf("5000-value delta sequence encoded to %d bytes", len(enc))
	}
	// Run followed by a break then another run — the pattern the greedy
	// tail-run tracker must not degrade to all-literals.
	var mix []int64
	for i := 0; i < 100; i++ {
		mix = append(mix, 7)
	}
	mix = append(mix, 1234567)
	for i := 0; i < 100; i++ {
		mix = append(mix, int64(i))
	}
	enc = intRoundTrip(t, mix)
	if len(enc) > 60 {
		t.Errorf("run/break/run sequence encoded to %d bytes", len(enc))
	}
	// Random values — pure literals.
	rng := rand.New(rand.NewSource(2))
	rnd := make([]int64, 3000)
	for i := range rnd {
		rnd[i] = rng.Int63() - (1 << 62)
	}
	intRoundTrip(t, rnd)
}

func TestIntStreamProperty(t *testing.T) {
	f := func(vals []int64) bool {
		var w IntWriter
		for _, v := range vals {
			w.WriteInt(v)
		}
		w.FlushRun()
		r := NewIntReader(w.Bytes(), 0)
		for _, want := range vals {
			got, err := r.ReadInt()
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntStreamSmallRunsProperty(t *testing.T) {
	// Small-domain values exercise run/literal mode switching heavily.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(600)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(3))
		}
		intRoundTrip(t, vals)
	}
}

func TestBitFieldRoundTrip(t *testing.T) {
	cases := [][]bool{
		{},
		{true},
		{false, true, false},
		{true, true, true, true, true, true, true, true, true}, // crosses byte
	}
	for _, c := range cases {
		var w BitFieldWriter
		for _, v := range c {
			w.WriteBool(v)
		}
		w.FlushRun()
		r := NewBitFieldReader(w.Bytes(), 0)
		for i, want := range c {
			got, err := r.ReadBool()
			if err != nil {
				t.Fatalf("bit %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("bit %d = %v, want %v", i, got, want)
			}
		}
	}
}

func TestBitFieldLong(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bits := make([]bool, 10001)
	for i := range bits {
		bits[i] = rng.Intn(5) != 0
	}
	var w BitFieldWriter
	for _, v := range bits {
		w.WriteBool(v)
	}
	w.FlushRun()
	r := NewBitFieldReader(w.Bytes(), 0)
	for i, want := range bits {
		got, err := r.ReadBool()
		if err != nil || got != want {
			t.Fatalf("bit %d = %v, %v; want %v", i, got, err, want)
		}
	}
}

func TestBitFieldAllSameCompresses(t *testing.T) {
	var w BitFieldWriter
	for i := 0; i < 80000; i++ {
		w.WriteBool(true)
	}
	w.FlushRun()
	// 80000 bits = 10000 0xFF bytes; RLE should crush them.
	if w.Len() > 200 {
		t.Errorf("all-true bit field encoded to %d bytes", w.Len())
	}
}

// TestFlushRunEntryPoints verifies the property the ORC row index relies on:
// after FlushRun, the byte length is a valid entry point and a fresh reader
// starting there sees exactly the values written after the flush.
func TestFlushRunEntryPoints(t *testing.T) {
	t.Run("int", func(t *testing.T) {
		var w IntWriter
		for i := 0; i < 1000; i++ {
			w.WriteInt(int64(i))
		}
		w.FlushRun()
		mark := w.Len()
		for i := 0; i < 500; i++ {
			w.WriteInt(int64(i * 7))
		}
		w.FlushRun()
		r := NewIntReader(w.Bytes(), mark)
		for i := 0; i < 500; i++ {
			got, err := r.ReadInt()
			if err != nil || got != int64(i*7) {
				t.Fatalf("after seek, value %d = %d, %v", i, got, err)
			}
		}
	})
	t.Run("bitfield", func(t *testing.T) {
		var w BitFieldWriter
		for i := 0; i < 77; i++ { // deliberately not byte-aligned
			w.WriteBool(i%2 == 0)
		}
		w.FlushRun()
		mark := w.Len()
		for i := 0; i < 33; i++ {
			w.WriteBool(i%3 == 0)
		}
		w.FlushRun()
		r := NewBitFieldReader(w.Bytes(), mark)
		for i := 0; i < 33; i++ {
			got, err := r.ReadBool()
			if err != nil || got != (i%3 == 0) {
				t.Fatalf("after seek, bit %d = %v, %v", i, got, err)
			}
		}
	})
	t.Run("runlengthbyte", func(t *testing.T) {
		var w RunLengthByteWriter
		for i := 0; i < 300; i++ {
			w.Put(9)
		}
		w.FlushRun()
		mark := w.Len()
		w.Put(1)
		w.Put(2)
		w.FlushRun()
		r := NewRunLengthByteReader(w.Bytes(), mark)
		b1, _ := r.ReadByte()
		b2, _ := r.ReadByte()
		if b1 != 1 || b2 != 2 {
			t.Fatalf("after seek got %d,%d", b1, b2)
		}
	})
}

func TestEncoderReset(t *testing.T) {
	encoders := []Encoder{&ByteWriter{}, &RunLengthByteWriter{}, &IntWriter{}, &BitFieldWriter{}}
	for _, e := range encoders {
		switch w := e.(type) {
		case *ByteWriter:
			w.PutByte(1)
		case *RunLengthByteWriter:
			w.Put(1)
		case *IntWriter:
			w.WriteInt(1)
		case *BitFieldWriter:
			w.WriteBool(true)
		}
		e.FlushRun()
		if e.Len() == 0 {
			t.Fatalf("%T: empty after write+flush", e)
		}
		e.Reset()
		if e.Len() != 0 {
			t.Errorf("%T: Len != 0 after Reset", e)
		}
		e.FlushRun()
		if e.Len() != 0 {
			t.Errorf("%T: Reset left pending run state", e)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Present, Data, Length, DictionaryData, Secondary} {
		if k.String() == "" || k.String()[0] == 'k' {
			t.Errorf("Kind %d has bad name %q", int(k), k.String())
		}
	}
}
