package orc

import (
	"sync"
	"testing"
)

func TestMemoryManagerScaleMath(t *testing.T) {
	mm := NewMemoryManager(100)
	if mm.Scale() != 1 {
		t.Fatal("fresh manager scale != 1")
	}
	a, b, c := &Writer{}, &Writer{}, &Writer{}
	mm.Register(a, 60)
	if mm.Scale() != 1 {
		t.Fatalf("under threshold scaled: %v", mm.Scale())
	}
	mm.Register(b, 60)
	// 120 registered over a 100 threshold: scale = 100/120.
	if got := mm.Scale(); got != 100.0/120.0 {
		t.Fatalf("scale = %v, want %v", got, 100.0/120.0)
	}
	mm.Register(c, 80)
	if got := mm.Scale(); got != 0.5 {
		t.Fatalf("scale = %v, want 0.5", got)
	}
	// Closing writers restores the originals (paper §4.4: "the actual
	// stripe sizes of all writers will be set back").
	mm.Unregister(c)
	mm.Unregister(b)
	if mm.Scale() != 1 || mm.TotalRegistered() != 60 {
		t.Fatalf("after unregister: scale=%v total=%d", mm.Scale(), mm.TotalRegistered())
	}
	// Re-registering the same writer replaces its size.
	mm.Register(a, 200)
	if mm.TotalRegistered() != 200 || mm.NumWriters() != 1 {
		t.Fatalf("re-register: total=%d writers=%d", mm.TotalRegistered(), mm.NumWriters())
	}
	// Unregistering an unknown writer is a no-op.
	mm.Unregister(b)
	if mm.TotalRegistered() != 200 {
		t.Fatal("unknown unregister changed totals")
	}
}

func TestMemoryManagerConcurrent(t *testing.T) {
	mm := NewMemoryManager(1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Writer{}
			for j := 0; j < 100; j++ {
				mm.Register(w, 1<<10)
				mm.Scale()
				mm.Unregister(w)
			}
		}()
	}
	wg.Wait()
	if mm.NumWriters() != 0 || mm.TotalRegistered() != 0 {
		t.Fatalf("leaked registrations: %d writers, %d bytes", mm.NumWriters(), mm.TotalRegistered())
	}
}
