package orc

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dfs"
)

func TestMemoryManagerScaleMath(t *testing.T) {
	mm := NewMemoryManager(100)
	if mm.Scale() != 1 {
		t.Fatal("fresh manager scale != 1")
	}
	a, b, c := &Writer{}, &Writer{}, &Writer{}
	mm.Register(a, 60)
	if mm.Scale() != 1 {
		t.Fatalf("under threshold scaled: %v", mm.Scale())
	}
	mm.Register(b, 60)
	// 120 registered over a 100 threshold: scale = 100/120.
	if got := mm.Scale(); got != 100.0/120.0 {
		t.Fatalf("scale = %v, want %v", got, 100.0/120.0)
	}
	mm.Register(c, 80)
	if got := mm.Scale(); got != 0.5 {
		t.Fatalf("scale = %v, want 0.5", got)
	}
	// Closing writers restores the originals (paper §4.4: "the actual
	// stripe sizes of all writers will be set back").
	mm.Unregister(c)
	mm.Unregister(b)
	if mm.Scale() != 1 || mm.TotalRegistered() != 60 {
		t.Fatalf("after unregister: scale=%v total=%d", mm.Scale(), mm.TotalRegistered())
	}
	// Re-registering the same writer replaces its size.
	mm.Register(a, 200)
	if mm.TotalRegistered() != 200 || mm.NumWriters() != 1 {
		t.Fatalf("re-register: total=%d writers=%d", mm.TotalRegistered(), mm.NumWriters())
	}
	// Unregistering an unknown writer is a no-op.
	mm.Unregister(b)
	if mm.TotalRegistered() != 200 {
		t.Fatal("unknown unregister changed totals")
	}
}

func TestMemoryManagerConcurrent(t *testing.T) {
	mm := NewMemoryManager(1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Writer{}
			for j := 0; j < 100; j++ {
				mm.Register(w, 1<<10)
				mm.Scale()
				mm.Unregister(w)
			}
		}()
	}
	wg.Wait()
	if mm.NumWriters() != 0 || mm.TotalRegistered() != 0 {
		t.Fatalf("leaked registrations: %d writers, %d bytes", mm.NumWriters(), mm.TotalRegistered())
	}
}

// openOrc opens a written file for stripe inspection.
func openOrc(t *testing.T, fs *dfs.FS, path string) *Reader {
	t.Helper()
	fr, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(fr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMemoryPoolExhaustionForcesEarlyFlush drives one writer under a pool
// that later registrations exhaust: its effective stripe size collapses and
// it must flush stripes far earlier (and far more often) than its
// configured stripe size implies.
func TestMemoryPoolExhaustionForcesEarlyFlush(t *testing.T) {
	mm := NewMemoryManager(24 << 10)
	fs := dfs.New()
	schema := simpleSchema()
	rows := simpleRows(20000)

	// Baseline: a single writer fits in the pool (20KB <= 24KB), scale 1.
	fw0, _ := fs.Create("/t/solo")
	w0, err := NewWriter(fw0, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500, Memory: mm})
	if err != nil {
		t.Fatal(err)
	}
	if got := mm.Scale(); got != 1 {
		t.Fatalf("Scale with one writer = %v, want 1", got)
	}

	// Exhaust the pool: 4 more writers bring the total to 100KB against the
	// 24KB threshold, scaling every writer to roughly a quarter stripe.
	var extra []*Writer
	var extraFiles []*dfs.FileWriter
	for i := 0; i < 4; i++ {
		fw, _ := fs.Create(fmt.Sprintf("/t/x%d", i))
		w, err := NewWriter(fw, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500, Memory: mm})
		if err != nil {
			t.Fatal(err)
		}
		extra = append(extra, w)
		extraFiles = append(extraFiles, fw)
	}
	wantScale := float64(24<<10) / float64(100<<10)
	if got := mm.Scale(); got != wantScale {
		t.Fatalf("Scale with pool exhausted = %v, want %v", got, wantScale)
	}

	for _, row := range rows {
		if err := w0.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}
	fw0.Close()
	for i, w := range extra {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		extraFiles[i].Close()
	}

	// The same rows written without memory pressure, for comparison.
	fwRef, _ := fs.Create("/t/ref")
	wRef, err := NewWriter(fwRef, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := wRef.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := wRef.Close(); err != nil {
		t.Fatal(err)
	}
	fwRef.Close()

	squeezed, ref := openOrc(t, fs, "/t/solo"), openOrc(t, fs, "/t/ref")
	if squeezed.NumStripes() <= ref.NumStripes() {
		t.Errorf("exhausted pool produced %d stripes vs %d unmanaged; expected early flushes",
			squeezed.NumStripes(), ref.NumStripes())
	}
	// Every stripe the squeezed writer flushed must stay near the scaled
	// budget (slack for the checkInterval estimate granularity).
	budget := uint64(float64(20<<10)*wantScale) * 2
	for i, s := range squeezed.Stripes() {
		if s.DataLength > budget {
			t.Errorf("stripe %d data length %d exceeds scaled budget %d", i, s.DataLength, budget)
		}
	}
	// And the rows must round-trip despite the forced flushes.
	got := readAll(t, squeezed, ReadOptions{})
	if len(got) != len(rows) {
		t.Fatalf("read %d rows, want %d", len(got), len(rows))
	}
}

// TestMemoryPoolExactBoundary registers writers summing to exactly the
// threshold: the manager must not scale (§4.4 scales only when the total
// exceeds the bound), and stripe layout must match an unmanaged writer's.
func TestMemoryPoolExactBoundary(t *testing.T) {
	mm := NewMemoryManager(40 << 10)
	fs := dfs.New()
	schema := simpleSchema()
	rows := simpleRows(15000)

	// Two writers at 20KB each: total == threshold exactly.
	var writers []*Writer
	var files []*dfs.FileWriter
	for i := 0; i < 2; i++ {
		fw, _ := fs.Create(fmt.Sprintf("/t/b%d", i))
		w, err := NewWriter(fw, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500, Memory: mm})
		if err != nil {
			t.Fatal(err)
		}
		writers = append(writers, w)
		files = append(files, fw)
	}
	if got := mm.TotalRegistered(); got != 40<<10 {
		t.Fatalf("TotalRegistered = %d, want %d", got, 40<<10)
	}
	if got := mm.Scale(); got != 1 {
		t.Fatalf("Scale at exact boundary = %v, want 1 (scaling starts beyond the threshold)", got)
	}

	for _, row := range rows {
		for _, w := range writers {
			if err := w.Write(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		files[i].Close()
	}

	fwRef, _ := fs.Create("/t/unmanaged")
	wRef, err := NewWriter(fwRef, schema, &WriterOptions{StripeSize: 20 << 10, RowIndexStride: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := wRef.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := wRef.Close(); err != nil {
		t.Fatal(err)
	}
	fwRef.Close()

	managed, ref := openOrc(t, fs, "/t/b0"), openOrc(t, fs, "/t/unmanaged")
	if managed.NumStripes() != ref.NumStripes() {
		t.Errorf("at-boundary writer produced %d stripes, unmanaged %d; boundary must not trigger scaling",
			managed.NumStripes(), ref.NumStripes())
	}
	got := readAll(t, managed, ReadOptions{})
	if len(got) != len(rows) {
		t.Fatalf("read %d rows, want %d", len(got), len(rows))
	}
}
