// Package orc implements the Optimized Record Columnar File format of the
// paper's §4: a columnar, self-describing file format with type-aware
// encodings, three-level sparse indexes (file / stripe / index group),
// predicate pushdown, optional general-purpose compression, HDFS block
// alignment, and a memory manager bounding concurrent writers.
package orc

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/stats"
	"repro/internal/types"
)

// Defaults mirrored from the paper (§4.1–§4.3).
const (
	DefaultStripeSize     = 256 << 20 // 256 MB
	DefaultRowIndexStride = 10000     // values per index group
)

// WriterOptions configures an ORC writer.
type WriterOptions struct {
	// StripeSize is the target in-memory stripe size in bytes
	// (default 256 MB).
	StripeSize int64
	// RowIndexStride is the number of rows per index group
	// (default 10000). Zero disables the row index.
	RowIndexStride int
	// Compression selects the optional general-purpose codec.
	Compression compress.Kind
	// CompressionUnit is the codec unit size (default 256 KB).
	CompressionUnit int
	// DictionaryThreshold is the max distinct/encoded ratio for string
	// dictionary encoding (default 0.8).
	DictionaryThreshold float64
	// BlockAlign pads stripes so no stripe crosses a DFS block boundary
	// (§4.1's third improvement); requires BlockSize.
	BlockAlign bool
	// BlockSize is the DFS block size used for alignment.
	BlockSize int64
	// Memory optionally bounds this writer's stripe buffer together with
	// other registered writers (§4.4).
	Memory *MemoryManager
}

func (o *WriterOptions) withDefaults() WriterOptions {
	out := WriterOptions{}
	if o != nil {
		out = *o
	}
	if out.StripeSize <= 0 {
		out.StripeSize = DefaultStripeSize
	}
	if out.RowIndexStride < 0 {
		out.RowIndexStride = 0
	}
	if out.RowIndexStride == 0 {
		out.RowIndexStride = DefaultRowIndexStride
	}
	if out.CompressionUnit <= 0 {
		out.CompressionUnit = DefaultCompressionUnit
	}
	if out.DictionaryThreshold <= 0 {
		out.DictionaryThreshold = DefaultDictionaryThreshold
	}
	return out
}

// File is the sequential output target for an ORC writer; *dfs.FileWriter
// implements it.
type File interface {
	io.Writer
	// Pos returns the current file length (next write offset).
	Pos() int64
}

// Writer writes rows into an ORC file. It buffers one stripe in memory
// (which is why the memory manager exists) and flushes stripes as they
// reach the effective stripe size.
type Writer struct {
	f      File
	opts   WriterOptions
	codec  compress.Codec
	schema *types.Schema
	tree   *types.ColumnTree

	root    columnWriter
	columns []columnWriter // flattened by column id

	rowsInStripe  int64
	rowsInFile    uint64
	stripes       []StripeInformation
	stripeStats   [][]*ColumnStats
	checkInterval int64
	closed        bool

	collect  *stats.Collector // catalog stats, fed per row
	catStats *stats.FileStats // sealed by Close
}

// NewWriter creates an ORC writer over f for the given schema.
func NewWriter(f File, schema *types.Schema, opts *WriterOptions) (*Writer, error) {
	o := opts.withDefaults()
	codec, err := compress.ForKind(o.Compression)
	if err != nil {
		return nil, err
	}
	tree := types.Decompose(schema)
	w := &Writer{
		f:             f,
		opts:          o,
		codec:         codec,
		schema:        schema,
		tree:          tree,
		checkInterval: 1024,
		collect:       stats.NewCollector(schema),
	}
	w.root, err = newColumnWriter(tree.Root, &o)
	if err != nil {
		return nil, err
	}
	collectWriters(w.root, &w.columns)
	if len(w.columns) != tree.NumColumns() {
		return nil, fmt.Errorf("orc: writer tree has %d columns, schema has %d", len(w.columns), tree.NumColumns())
	}
	if o.Memory != nil {
		o.Memory.Register(w, o.StripeSize)
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		return nil, err
	}
	return w, nil
}

// Schema returns the writer's schema.
func (w *Writer) Schema() *types.Schema { return w.schema }

// Write appends one row.
func (w *Writer) Write(row types.Row) error {
	if w.closed {
		return errors.New("orc: write after Close")
	}
	if len(row) != len(w.schema.Columns) {
		return fmt.Errorf("orc: row has %d columns, schema has %d", len(row), len(w.schema.Columns))
	}
	if w.rowsInStripe%int64(w.opts.RowIndexStride) == 0 {
		for _, c := range w.columns {
			c.startGroup()
		}
	}
	// The root struct writer fans the row out to all children.
	if err := w.root.write([]any(row)); err != nil {
		return err
	}
	w.collect.Add(row)
	w.rowsInStripe++
	w.rowsInFile++
	if w.rowsInStripe%w.checkInterval == 0 && w.estimatedStripeSize() >= w.effectiveStripeSize() {
		return w.flushStripe()
	}
	return nil
}

// effectiveStripeSize applies the memory manager's scale factor (§4.4).
func (w *Writer) effectiveStripeSize() int64 {
	size := w.opts.StripeSize
	if w.opts.Memory != nil {
		scaled := int64(float64(size) * w.opts.Memory.Scale())
		if scaled < 1 {
			scaled = 1
		}
		size = scaled
	}
	return size
}

func (w *Writer) estimatedStripeSize() int64 { return w.root.estimatedSize() }

// EstimatedBufferedBytes exposes the current stripe buffer estimate (used
// in memory-manager tests and by orcdump).
func (w *Writer) EstimatedBufferedBytes() int64 { return w.estimatedStripeSize() }

// flushStripe assembles and writes the buffered stripe.
func (w *Writer) flushStripe() error {
	if w.rowsInStripe == 0 {
		return nil
	}
	// Finish all columns: collect streams, encodings and stats.
	streams := make([][]finishedStream, len(w.columns))
	encodings := make([]ColumnEncoding, len(w.columns))
	stripeStats := make([]*ColumnStats, len(w.columns))
	for i, c := range w.columns {
		streams[i] = c.finish()
		encodings[i] = c.encoding()
		stripeStats[i] = c.stripeStats()
	}

	// Chunk every stream, laying data section out column by column
	// (paper Figure 2: all columns of a stripe in the same file).
	var data []byte
	var dir []StreamInfo
	// storedPositions[col][group][streamIdx] -> stored byte offset
	// relative to the stream start.
	numGroups := len(w.columns[0].groupStats())
	rowIndexes := make([]*RowIndex, len(w.columns))
	for i := range w.columns {
		ri := &RowIndex{Entries: make([]RowIndexEntry, numGroups)}
		groupStats := w.columns[i].groupStats()
		for g := 0; g < numGroups; g++ {
			ri.Entries[g].Stats = groupStats[g]
		}
		for _, fs := range streams[i] {
			stored, storedCuts, err := chunkStream(w.codec, fs.raw, fs.cuts, w.opts.CompressionUnit)
			if err != nil {
				return err
			}
			dir = append(dir, StreamInfo{Column: i, Kind: fs.kind, Length: uint64(len(stored))})
			data = append(data, stored...)
			for g := 0; g < numGroups; g++ {
				pos := uint64(0)
				if g < len(storedCuts) {
					pos = storedCuts[g]
				}
				ri.Entries[g].Positions = append(ri.Entries[g].Positions, pos)
			}
		}
		rowIndexes[i] = ri
	}

	// One independently compressed index section per column, so readers
	// fetch only the indexes of projected columns.
	var indexSec []byte
	indexLens := make([]uint64, len(w.columns))
	for i, ri := range rowIndexes {
		sec, err := encodeSection(w.codec, encodeRowIndex(ri), w.opts.CompressionUnit)
		if err != nil {
			return err
		}
		indexLens[i] = uint64(len(sec))
		indexSec = append(indexSec, sec...)
	}
	sf := &StripeFooter{Streams: dir, Encodings: encodings, Stats: stripeStats, IndexLens: indexLens}
	footerSec, err := encodeSection(w.codec, sf.encode(), w.opts.CompressionUnit)
	if err != nil {
		return err
	}

	stripeLen := int64(len(indexSec) + len(data) + len(footerSec))
	if err := w.alignToBlock(stripeLen); err != nil {
		return err
	}
	offset := w.f.Pos()
	for _, sec := range [][]byte{indexSec, data, footerSec} {
		if _, err := w.f.Write(sec); err != nil {
			return err
		}
	}
	w.stripes = append(w.stripes, StripeInformation{
		Offset:       uint64(offset),
		IndexLength:  uint64(len(indexSec)),
		DataLength:   uint64(len(data)),
		FooterLength: uint64(len(footerSec)),
		NumRows:      uint64(w.rowsInStripe),
	})
	w.stripeStats = append(w.stripeStats, stripeStats)

	w.rowsInStripe = 0
	for _, c := range w.columns {
		c.reset()
	}
	return nil
}

// alignToBlock pads the file with zeros so the next stripe does not cross a
// DFS block boundary (§4.1): if the stripe does not fit in the remainder of
// the current block but does fit in a whole block, pad to the boundary.
func (w *Writer) alignToBlock(stripeLen int64) error {
	if !w.opts.BlockAlign || w.opts.BlockSize <= 0 || stripeLen > w.opts.BlockSize {
		return nil
	}
	pos := w.f.Pos()
	remaining := w.opts.BlockSize - pos%w.opts.BlockSize
	if remaining >= stripeLen {
		return nil
	}
	pad := make([]byte, remaining)
	_, err := w.f.Write(pad)
	return err
}

// Close flushes the final stripe and writes the file metadata, footer and
// postscript. It must be called exactly once.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("orc: double Close")
	}
	w.closed = true
	if w.opts.Memory != nil {
		defer w.opts.Memory.Unregister(w)
	}
	if err := w.flushStripe(); err != nil {
		return err
	}

	meta := &FileMetadata{StripeStats: w.stripeStats}
	metaSec, err := encodeSection(w.codec, meta.encode(), w.opts.CompressionUnit)
	if err != nil {
		return err
	}
	fileStats := make([]*ColumnStats, len(w.columns))
	for i, c := range w.columns {
		fileStats[i] = c.fileStats()
	}
	footer := &Footer{
		NumRows:        w.rowsInFile,
		Schema:         w.schema,
		Stripes:        w.stripes,
		Statistics:     fileStats,
		RowIndexStride: uint64(w.opts.RowIndexStride),
	}
	footerSec, err := encodeSection(w.codec, footer.encode(), w.opts.CompressionUnit)
	if err != nil {
		return err
	}
	ps := &Postscript{
		FooterLength:    uint64(len(footerSec)),
		MetadataLength:  uint64(len(metaSec)),
		Compression:     w.opts.Compression,
		CompressionUnit: uint64(w.opts.CompressionUnit),
		Version:         1,
	}
	psBytes := ps.encode()
	if len(psBytes) > 255 {
		return fmt.Errorf("orc: postscript too large (%d bytes)", len(psBytes))
	}
	for _, sec := range [][]byte{metaSec, footerSec, psBytes, {byte(len(psBytes))}} {
		if _, err := w.f.Write(sec); err != nil {
			return err
		}
	}
	// Seal catalog statistics with the final encoded size, while the file
	// handle is still open (callers close it right after Close returns).
	w.catStats = w.collect.Finish(w.f.Pos())
	return nil
}

// FileStatistics returns the catalog-level statistics for the written
// file (per-column counts, ranges, NDV sketches). Valid only after a
// successful Close; nil otherwise.
func (w *Writer) FileStatistics() *stats.FileStats { return w.catStats }
