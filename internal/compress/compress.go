// Package compress provides the general-purpose codecs ORC File (§4.3) and
// RCFile optionally apply on top of type-specific encodings.
//
// The paper offers ZLIB, Snappy and LZO. ZLIB is backed by the standard
// library. Snappy and LZO are not in the Go standard library, so this
// package implements a pure-Go byte-oriented LZ77 block codec ("snappy")
// with the same engineering trade-off: much faster than zlib at a lower
// compression ratio. See DESIGN.md §4 for the substitution rationale.
package compress

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
)

// Kind identifies a codec.
type Kind int

// Supported codecs.
const (
	None Kind = iota
	Zlib
	Snappy
)

// String returns the codec name as spelled in table properties.
func (k Kind) String() string {
	switch k {
	case None:
		return "NONE"
	case Zlib:
		return "ZLIB"
	case Snappy:
		return "SNAPPY"
	}
	return fmt.Sprintf("codec(%d)", int(k))
}

// ParseKind parses a codec name (case-sensitive, as stored in file footers).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "NONE", "":
		return None, nil
	case "ZLIB":
		return Zlib, nil
	case "SNAPPY":
		return Snappy, nil
	}
	return None, fmt.Errorf("compress: unknown codec %q", s)
}

// Codec compresses and decompresses byte blocks.
type Codec interface {
	Kind() Kind
	// Compress appends the compressed form of src to dst and returns it.
	Compress(dst, src []byte) ([]byte, error)
	// Decompress appends the decompressed form of src to dst and returns
	// it. originalLen is the exact decompressed size, which the ORC
	// compression-unit header records.
	Decompress(dst, src []byte, originalLen int) ([]byte, error)
}

// ForKind returns the codec implementation for a kind; None returns nil
// (callers treat a nil codec as stored-uncompressed).
func ForKind(k Kind) (Codec, error) {
	switch k {
	case None:
		return nil, nil
	case Zlib:
		return zlibCodec{}, nil
	case Snappy:
		return lzCodec{}, nil
	}
	return nil, fmt.Errorf("compress: unknown codec kind %d", int(k))
}

type zlibCodec struct{}

func (zlibCodec) Kind() Kind { return Zlib }

func (zlibCodec) Compress(dst, src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := zlib.NewWriterLevel(&buf, zlib.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return append(dst, buf.Bytes()...), nil
}

func (zlibCodec) Decompress(dst, src []byte, originalLen int) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	start := len(dst)
	dst = append(dst, make([]byte, originalLen)...)
	if _, err := io.ReadFull(r, dst[start:]); err != nil {
		return nil, fmt.Errorf("compress: zlib short read: %w", err)
	}
	return dst, nil
}
