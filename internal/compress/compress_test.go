package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, k Kind, src []byte) []byte {
	t.Helper()
	c, err := ForKind(k)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := c.Compress(nil, src)
	if err != nil {
		t.Fatalf("%s Compress: %v", k, err)
	}
	got, err := c.Decompress(nil, comp, len(src))
	if err != nil {
		t.Fatalf("%s Decompress: %v", k, err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s round trip mismatch: got %d bytes, want %d", k, len(got), len(src))
	}
	return comp
}

func TestRoundTripBothCodecs(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abc"),
		[]byte("hello hello hello hello hello hello"),
		bytes.Repeat([]byte{0}, 10000),
		[]byte(strings.Repeat("the quick brown fox ", 500)),
	}
	for _, k := range []Kind{Zlib, Snappy} {
		for _, in := range inputs {
			roundTrip(t, k, in)
		}
	}
}

func TestCompressionRatioOrdering(t *testing.T) {
	// Low-entropy but match-poor data: LZ finds few long matches, while
	// zlib's Huffman stage compresses the skewed symbol distribution —
	// the ratio ordering (none > snappy > zlib on size) DESIGN.md promises.
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 1<<16)
	for i := range src {
		src[i] = "abcd"[rng.Intn(4)]
	}
	zc := roundTrip(t, Zlib, src)
	sc := roundTrip(t, Snappy, src)
	if len(sc) >= len(src) {
		t.Errorf("snappy did not compress low-entropy data: %d >= %d", len(sc), len(src))
	}
	if len(zc) >= len(sc) {
		t.Errorf("zlib (%d) not smaller than snappy (%d) on low-entropy data", len(zc), len(sc))
	}
}

func TestIncompressibleData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, 1<<16)
	rng.Read(src)
	for _, k := range []Kind{Zlib, Snappy} {
		comp := roundTrip(t, k, src)
		// Random bytes should not blow up by more than a small factor.
		if len(comp) > len(src)+len(src)/4 {
			t.Errorf("%s expanded random data %d -> %d", k, len(src), len(comp))
		}
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	c, _ := ForKind(Snappy)
	comp, _ := c.Compress(nil, []byte("tail"))
	out, err := c.Decompress([]byte("head-"), comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "head-tail" {
		t.Fatalf("got %q", out)
	}
}

func TestLzRejectsCorruptBlocks(t *testing.T) {
	c, _ := ForKind(Snappy)
	comp, _ := c.Compress(nil, []byte("hello hello hello hello"))
	// Wrong declared length.
	if _, err := c.Decompress(nil, comp, 5); err == nil {
		t.Error("Decompress accepted wrong originalLen")
	}
	// Truncated block.
	if _, err := c.Decompress(nil, comp[:len(comp)/2], 23); err == nil {
		t.Error("Decompress accepted truncated block")
	}
	// Empty input.
	if _, err := c.Decompress(nil, nil, 1); err == nil {
		t.Error("Decompress accepted empty block")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{None, Zlib, Snappy} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%s) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("LZO"); err == nil {
		t.Error("ParseKind accepted unsupported codec")
	}
	if k, err := ParseKind(""); err != nil || k != None {
		t.Error("ParseKind(\"\") should be None")
	}
}

func TestForKindNone(t *testing.T) {
	c, err := ForKind(None)
	if err != nil || c != nil {
		t.Errorf("ForKind(None) = %v, %v; want nil codec", c, err)
	}
	if _, err := ForKind(Kind(99)); err == nil {
		t.Error("ForKind accepted bogus kind")
	}
}

func TestRoundTripProperty(t *testing.T) {
	lz, _ := ForKind(Snappy)
	f := func(data []byte) bool {
		comp, err := lz.Compress(nil, data)
		if err != nil {
			return false
		}
		got, err := lz.Decompress(nil, comp, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOverlappingCopy(t *testing.T) {
	// A run of a two-byte pattern forces overlapping LZ copies.
	src := bytes.Repeat([]byte{0xAB, 0xCD}, 5000)
	comp := roundTrip(t, Snappy, src)
	if len(comp) > 200 {
		t.Errorf("run-length pattern compressed to %d bytes; expected far smaller", len(comp))
	}
}
