package compress

import (
	"encoding/binary"
	"fmt"
)

// lzCodec is a byte-oriented LZ77 block codec playing the role of Snappy in
// the paper: a fast, greedy, hash-table matcher with no entropy coding.
//
// Wire format (little-endian):
//
//	uvarint  decompressed length
//	sequence of ops:
//	  literal:  0x00 | (n-1)<<1 as uvarint, then n literal bytes
//	  copy:     0x01 | (len-minMatch)<<1 as uvarint, then uvarint distance
//
// Distances are at most 64 KiB, matching Snappy's effective window.
type lzCodec struct{}

const (
	lzMinMatch  = 4
	lzMaxDist   = 1 << 16
	lzHashBits  = 14
	lzHashShift = 32 - lzHashBits
)

func (lzCodec) Kind() Kind { return Snappy }

func lzHash(u uint32) uint32 {
	return (u * 0x9E3779B1) >> lzHashShift
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// Compress appends the compressed encoding of src to dst.
func (lzCodec) Compress(dst, src []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) < lzMinMatch {
		return appendLiteral(dst, src), nil
	}
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	i := 0
	limit := len(src) - lzMinMatch
	for i <= limit {
		h := lzHash(load32(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand <= lzMaxDist && load32(src, cand) == load32(src, i) {
			// Extend the match forward.
			matchLen := lzMinMatch
			for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
				matchLen++
			}
			dst = appendLiteral(dst, src[litStart:i])
			dst = binary.AppendUvarint(dst, 1|uint64(matchLen-lzMinMatch)<<1)
			dst = binary.AppendUvarint(dst, uint64(i-cand))
			i += matchLen
			litStart = i
			continue
		}
		i++
	}
	return appendLiteral(dst, src[litStart:]), nil
}

func appendLiteral(dst, lit []byte) []byte {
	if len(lit) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(lit)-1)<<1)
	return append(dst, lit...)
}

// Decompress appends the decoded bytes to dst. originalLen is checked
// against the length recorded in the block header.
func (lzCodec) Decompress(dst, src []byte, originalLen int) ([]byte, error) {
	declared, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("compress: lz block missing length header")
	}
	if int(declared) != originalLen {
		return nil, fmt.Errorf("compress: lz block declares %d bytes, caller expects %d", declared, originalLen)
	}
	src = src[n:]
	start := len(dst)
	for len(src) > 0 {
		op, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("compress: truncated lz op")
		}
		src = src[n:]
		if op&1 == 0 { // literal
			litLen := int(op>>1) + 1
			if litLen > len(src) {
				return nil, fmt.Errorf("compress: literal overruns block (%d > %d)", litLen, len(src))
			}
			dst = append(dst, src[:litLen]...)
			src = src[litLen:]
		} else { // copy
			matchLen := int(op>>1) + lzMinMatch
			dist, n := binary.Uvarint(src)
			if n <= 0 {
				return nil, fmt.Errorf("compress: truncated lz copy distance")
			}
			src = src[n:]
			pos := len(dst) - int(dist)
			if pos < start {
				return nil, fmt.Errorf("compress: lz copy reaches before block start")
			}
			// Overlapping copies are the core of RLE-via-LZ; copy byte
			// by byte when the regions overlap.
			for k := 0; k < matchLen; k++ {
				dst = append(dst, dst[pos+k])
			}
		}
	}
	if len(dst)-start != originalLen {
		return nil, fmt.Errorf("compress: lz block decoded %d bytes, want %d", len(dst)-start, originalLen)
	}
	return dst, nil
}
