// pool.go recycles batches and column vectors. A vectorized fragment
// allocates a batch per map task (plus scratch columns per compiled
// expression); under a persistent daemon thousands of tasks churn through
// identical allocations, so batches are drawn from a capacity-specific
// pool instead and returned when the fragment ends.
package vector

import (
	"sync"
	"sync/atomic"
)

// Pool recycles column vectors and batch shells of one fixed capacity.
type Pool struct {
	capacity int
	longs    sync.Pool
	doubles  sync.Pool
	bytes    sync.Pool
	shells   sync.Pool

	// Gets counts vectors handed out; News the subset that had to be
	// freshly allocated (steady state: News stops growing).
	Gets atomic.Int64
	News atomic.Int64
}

// NewPool creates a pool of vectors with the given row capacity.
func NewPool(capacity int) *Pool {
	p := &Pool{capacity: capacity}
	p.longs.New = func() any { p.News.Add(1); return NewLongColumnVector(capacity) }
	p.doubles.New = func() any { p.News.Add(1); return NewDoubleColumnVector(capacity) }
	p.bytes.New = func() any { p.News.Add(1); return NewBytesColumnVector(capacity) }
	p.shells.New = func() any { return &VectorizedRowBatch{Selected: make([]int, capacity)} }
	return p
}

// Capacity returns the row capacity of pooled vectors.
func (p *Pool) Capacity() int { return p.capacity }

// GetLong returns a reset long vector.
func (p *Pool) GetLong() *LongColumnVector {
	p.Gets.Add(1)
	v := p.longs.Get().(*LongColumnVector)
	v.Reset()
	return v
}

// GetDouble returns a reset double vector.
func (p *Pool) GetDouble() *DoubleColumnVector {
	p.Gets.Add(1)
	v := p.doubles.Get().(*DoubleColumnVector)
	v.Reset()
	return v
}

// GetBytes returns a reset bytes vector.
func (p *Pool) GetBytes() *BytesColumnVector {
	p.Gets.Add(1)
	v := p.bytes.Get().(*BytesColumnVector)
	v.Reset()
	return v
}

// GetBatch assembles a pooled batch shell around cols.
func (p *Pool) GetBatch(cols ...ColumnVector) *VectorizedRowBatch {
	b := p.shells.Get().(*VectorizedRowBatch)
	b.Size = 0
	b.SelectedInUse = false
	b.Columns = append(b.Columns[:0], cols...)
	return b
}

// Put returns a batch and every one of its columns — including scratch
// columns appended after GetBatch — to the pool. Vectors of a different
// capacity (or foreign types) are dropped.
func (p *Pool) Put(b *VectorizedRowBatch) {
	if b == nil {
		return
	}
	for _, c := range b.Columns {
		if c.Capacity() != p.capacity {
			continue
		}
		switch v := c.(type) {
		case *LongColumnVector:
			p.longs.Put(v)
		case *DoubleColumnVector:
			p.doubles.Put(v)
		case *BytesColumnVector:
			// Drop value references so pooled vectors don't pin reader
			// buffers.
			for i := range v.Vector {
				v.Vector[i] = nil
			}
			p.bytes.Put(v)
		}
	}
	b.Columns = b.Columns[:0]
	p.shells.Put(b)
}
