// arith.go implements the arithmetic vectorized expressions (paper §6.2,
// Figure 8). Specialized variants exist per operand pattern (column ⊕
// column, column ⊕ scalar, scalar ⊕ column) and per type; Go generics play
// the role of §6.3's build-time templates, instantiating a tight typed loop
// per (type, pattern) pair. The operator dispatch happens once per batch —
// outside the inner loop — never per row.
package vector

// Number constrains the numeric vector element types.
type Number interface{ ~int64 | ~float64 }

// ArithOp enumerates the arithmetic operators.
type ArithOp int

// Arithmetic operators. Division is defined on doubles only; the compiler
// casts integer operands first (Hive semantics).
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// numVector is the view templates operate on.
type numVector[T Number] struct {
	flags  *base
	vector []T
}

func longView(b *VectorizedRowBatch, c int) numVector[int64] {
	v := b.Long(c)
	return numVector[int64]{flags: &v.base, vector: v.Vector}
}

func doubleView(b *VectorizedRowBatch, c int) numVector[float64] {
	v := b.Double(c)
	return numVector[float64]{flags: &v.base, vector: v.Vector}
}

// ArithColScalarLong is `long_col op long_scalar` (the paper's
// LongColAddLongScalarExpression family).
type ArithColScalarLong struct {
	Op         ArithOp
	Input, Out int
	Scalar     int64
}

// Evaluate implements Expression.
func (e *ArithColScalarLong) Evaluate(b *VectorizedRowBatch) {
	evalColScalar(b, e.Op, longView(b, e.Input), e.Scalar, longView(b, e.Out))
}

// Output implements Expression.
func (e *ArithColScalarLong) Output() int { return e.Out }

// ArithColScalarDouble is `double_col op double_scalar`.
type ArithColScalarDouble struct {
	Op         ArithOp
	Input, Out int
	Scalar     float64
}

// Evaluate implements Expression.
func (e *ArithColScalarDouble) Evaluate(b *VectorizedRowBatch) {
	evalColScalar(b, e.Op, doubleView(b, e.Input), e.Scalar, doubleView(b, e.Out))
}

// Output implements Expression.
func (e *ArithColScalarDouble) Output() int { return e.Out }

// ArithScalarColLong is `long_scalar op long_col`.
type ArithScalarColLong struct {
	Op         ArithOp
	Input, Out int
	Scalar     int64
}

// Evaluate implements Expression.
func (e *ArithScalarColLong) Evaluate(b *VectorizedRowBatch) {
	evalScalarCol(b, e.Op, e.Scalar, longView(b, e.Input), longView(b, e.Out))
}

// Output implements Expression.
func (e *ArithScalarColLong) Output() int { return e.Out }

// ArithScalarColDouble is `double_scalar op double_col`.
type ArithScalarColDouble struct {
	Op         ArithOp
	Input, Out int
	Scalar     float64
}

// Evaluate implements Expression.
func (e *ArithScalarColDouble) Evaluate(b *VectorizedRowBatch) {
	evalScalarCol(b, e.Op, e.Scalar, doubleView(b, e.Input), doubleView(b, e.Out))
}

// Output implements Expression.
func (e *ArithScalarColDouble) Output() int { return e.Out }

// ArithColColLong is `long_col op long_col`.
type ArithColColLong struct {
	Op               ArithOp
	Left, Right, Out int
}

// Evaluate implements Expression.
func (e *ArithColColLong) Evaluate(b *VectorizedRowBatch) {
	evalColCol(b, e.Op, longView(b, e.Left), longView(b, e.Right), longView(b, e.Out))
}

// Output implements Expression.
func (e *ArithColColLong) Output() int { return e.Out }

// ArithColColDouble is `double_col op double_col`.
type ArithColColDouble struct {
	Op               ArithOp
	Left, Right, Out int
}

// Evaluate implements Expression.
func (e *ArithColColDouble) Evaluate(b *VectorizedRowBatch) {
	evalColCol(b, e.Op, doubleView(b, e.Left), doubleView(b, e.Right), doubleView(b, e.Out))
}

// Output implements Expression.
func (e *ArithColColDouble) Output() int { return e.Out }

// CastLongToDouble widens an integer column (division and mixed-type
// arithmetic).
type CastLongToDouble struct {
	Input, Out int
}

// Evaluate implements Expression.
func (e *CastLongToDouble) Evaluate(b *VectorizedRowBatch) {
	in := b.Long(e.Input)
	out := b.Double(e.Out)
	out.NoNulls = in.NoNulls
	out.IsRepeating = in.IsRepeating
	if in.IsRepeating {
		out.Vector[0] = float64(in.Vector[0])
		out.IsNull[0] = !in.NoNulls && in.IsNull[0]
		return
	}
	inV, outV := in.Vector, out.Vector
	if b.SelectedInUse {
		for _, i := range b.Selected[:b.Size] {
			outV[i] = float64(inV[i])
		}
	} else {
		for i := 0; i < b.Size; i++ {
			outV[i] = float64(inV[i])
		}
	}
	if !in.NoNulls {
		copy(out.IsNull, in.IsNull)
	}
}

// Output implements Expression.
func (e *CastLongToDouble) Output() int { return e.Out }

// ConstLong fills the output with a constant (IsRepeating short-circuit).
type ConstLong struct {
	Out   int
	Value int64
	Null  bool
}

// Evaluate implements Expression.
func (e *ConstLong) Evaluate(b *VectorizedRowBatch) {
	out := b.Long(e.Out)
	out.IsRepeating = true
	out.Vector[0] = e.Value
	out.NoNulls = !e.Null
	out.IsNull[0] = e.Null
}

// Output implements Expression.
func (e *ConstLong) Output() int { return e.Out }

// ConstDouble fills the output with a constant.
type ConstDouble struct {
	Out   int
	Value float64
	Null  bool
}

// Evaluate implements Expression.
func (e *ConstDouble) Evaluate(b *VectorizedRowBatch) {
	out := b.Double(e.Out)
	out.IsRepeating = true
	out.Vector[0] = e.Value
	out.NoNulls = !e.Null
	out.IsNull[0] = e.Null
}

// Output implements Expression.
func (e *ConstDouble) Output() int { return e.Out }

// ConstBytes fills the output with a constant byte string.
type ConstBytes struct {
	Out   int
	Value []byte
	Null  bool
}

// Evaluate implements Expression.
func (e *ConstBytes) Evaluate(b *VectorizedRowBatch) {
	out := b.Bytes(e.Out)
	out.IsRepeating = true
	out.Vector[0] = e.Value
	out.NoNulls = !e.Null
	out.IsNull[0] = e.Null
}

// Output implements Expression.
func (e *ConstBytes) Output() int { return e.Out }

// apply computes one value; it is called outside inner loops (repeating
// case) or from per-op specialized loops below.
func apply[T Number](op ArithOp, a, b T) T {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0 // caller marks NULL
		}
		return a / b
	}
	panic("vector: bad arith op")
}

// evalColScalar is the template body shared by the ColScalar variants: one
// tight loop per operator, no branches inside (Figure 8).
func evalColScalar[T Number](b *VectorizedRowBatch, op ArithOp, in numVector[T], scalar T, out numVector[T]) {
	out.flags.NoNulls = in.flags.NoNulls
	out.flags.IsRepeating = in.flags.IsRepeating
	if in.flags.IsRepeating {
		out.vector[0] = apply(op, in.vector[0], scalar)
		out.flags.IsNull[0] = !in.flags.NoNulls && in.flags.IsNull[0]
		return
	}
	inV, outV := in.vector, out.vector
	divZero := op == Div && scalar == 0
	switch {
	case divZero:
		out.flags.NoNulls = false
		b.Rows(func(i int) { out.flags.IsNull[i] = true })
	case b.SelectedInUse:
		sel := b.Selected[:b.Size]
		switch op {
		case Add:
			for _, i := range sel {
				outV[i] = inV[i] + scalar
			}
		case Sub:
			for _, i := range sel {
				outV[i] = inV[i] - scalar
			}
		case Mul:
			for _, i := range sel {
				outV[i] = inV[i] * scalar
			}
		case Div:
			for _, i := range sel {
				outV[i] = inV[i] / scalar
			}
		}
	default:
		n := b.Size
		switch op {
		case Add:
			for i := 0; i < n; i++ {
				outV[i] = inV[i] + scalar
			}
		case Sub:
			for i := 0; i < n; i++ {
				outV[i] = inV[i] - scalar
			}
		case Mul:
			for i := 0; i < n; i++ {
				outV[i] = inV[i] * scalar
			}
		case Div:
			for i := 0; i < n; i++ {
				outV[i] = inV[i] / scalar
			}
		}
	}
	if !in.flags.NoNulls {
		copy(out.flags.IsNull, in.flags.IsNull)
	}
}

func evalScalarCol[T Number](b *VectorizedRowBatch, op ArithOp, scalar T, in numVector[T], out numVector[T]) {
	out.flags.NoNulls = in.flags.NoNulls
	out.flags.IsRepeating = in.flags.IsRepeating
	if in.flags.IsRepeating {
		out.vector[0] = apply(op, scalar, in.vector[0])
		out.flags.IsNull[0] = !in.flags.NoNulls && in.flags.IsNull[0]
		if op == Div && in.vector[0] == 0 {
			out.flags.NoNulls = false
			out.flags.IsNull[0] = true
		}
		return
	}
	inV, outV := in.vector, out.vector
	if b.SelectedInUse {
		sel := b.Selected[:b.Size]
		switch op {
		case Add:
			for _, i := range sel {
				outV[i] = scalar + inV[i]
			}
		case Sub:
			for _, i := range sel {
				outV[i] = scalar - inV[i]
			}
		case Mul:
			for _, i := range sel {
				outV[i] = scalar * inV[i]
			}
		case Div:
			for _, i := range sel {
				outV[i] = apply(Div, scalar, inV[i])
			}
		}
	} else {
		n := b.Size
		switch op {
		case Add:
			for i := 0; i < n; i++ {
				outV[i] = scalar + inV[i]
			}
		case Sub:
			for i := 0; i < n; i++ {
				outV[i] = scalar - inV[i]
			}
		case Mul:
			for i := 0; i < n; i++ {
				outV[i] = scalar * inV[i]
			}
		case Div:
			for i := 0; i < n; i++ {
				outV[i] = apply(Div, scalar, inV[i])
			}
		}
	}
	if !in.flags.NoNulls {
		copy(out.flags.IsNull, in.flags.IsNull)
	}
	if op == Div {
		// Division by zero yields NULL.
		markDivZeroNulls(b, in, out)
	}
}

func evalColCol[T Number](b *VectorizedRowBatch, op ArithOp, l, r, out numVector[T]) {
	out.flags.NoNulls = l.flags.NoNulls && r.flags.NoNulls
	if l.flags.IsRepeating && r.flags.IsRepeating {
		out.flags.IsRepeating = true
		out.vector[0] = apply(op, l.vector[0], r.vector[0])
		out.flags.IsNull[0] = l.flags.IsNull[0] || r.flags.IsNull[0]
		return
	}
	out.flags.IsRepeating = false
	lv := func(i int) T {
		if l.flags.IsRepeating {
			return l.vector[0]
		}
		return l.vector[i]
	}
	rv := func(i int) T {
		if r.flags.IsRepeating {
			return r.vector[0]
		}
		return r.vector[i]
	}
	// The common non-repeating fast path gets branch-free loops.
	if !l.flags.IsRepeating && !r.flags.IsRepeating && op != Div {
		lV, rV, outV := l.vector, r.vector, out.vector
		if b.SelectedInUse {
			sel := b.Selected[:b.Size]
			switch op {
			case Add:
				for _, i := range sel {
					outV[i] = lV[i] + rV[i]
				}
			case Sub:
				for _, i := range sel {
					outV[i] = lV[i] - rV[i]
				}
			case Mul:
				for _, i := range sel {
					outV[i] = lV[i] * rV[i]
				}
			}
		} else {
			n := b.Size
			switch op {
			case Add:
				for i := 0; i < n; i++ {
					outV[i] = lV[i] + rV[i]
				}
			case Sub:
				for i := 0; i < n; i++ {
					outV[i] = lV[i] - rV[i]
				}
			case Mul:
				for i := 0; i < n; i++ {
					outV[i] = lV[i] * rV[i]
				}
			}
		}
	} else {
		b.Rows(func(i int) {
			out.vector[i] = apply(op, lv(i), rv(i))
			if op == Div && rv(i) == 0 {
				out.flags.NoNulls = false
				out.flags.IsNull[i] = true
			}
		})
	}
	if !out.flags.NoNulls {
		b.Rows(func(i int) {
			if nullAt(l.flags, i) || nullAt(r.flags, i) {
				out.flags.IsNull[i] = true
			}
		})
	}
}

func nullAt(f *base, i int) bool {
	if f.NoNulls {
		return false
	}
	if f.IsRepeating {
		return f.IsNull[0]
	}
	return f.IsNull[i]
}

func markDivZeroNulls[T Number](b *VectorizedRowBatch, in, out numVector[T]) {
	b.Rows(func(i int) {
		if in.vector[i] == 0 {
			out.flags.NoNulls = false
			out.flags.IsNull[i] = true
		}
	})
}
