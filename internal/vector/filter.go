// filter.go implements the in-place filtering expressions (paper §6.2):
// comparisons, BETWEEN, IN, IS NULL, AND/OR and NOT manipulate the batch's
// selected[] array so that subsequent expressions only work on rows that
// passed. NULL comparison results reject the row, matching SQL WHERE.
package vector

import (
	"bytes"
	"sync/atomic"
)

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// flippedOp is a deliberate-bug switch for the differential harness
// (qcheck): when set to LT, every vectorized `<` evaluates as `<=` — the
// classic off-by-one boundary bug. It exists so tests can prove the
// harness detects and shrinks a real comparator defect; production code
// never sets it. Stored as op+1 so the zero value means "no flip".
var flippedOp atomic.Int32

// SetCmpFlipForTest arms (or, with on=false, disarms) the deliberate
// comparison bug. Test-only.
func SetCmpFlipForTest(op CmpOp, on bool) {
	if on {
		flippedOp.Store(int32(op) + 1)
	} else {
		flippedOp.Store(0)
	}
}

func cmpHolds[T Number](op CmpOp, a, b T) bool {
	if f := flippedOp.Load(); f != 0 && CmpOp(f-1) == op && op == LT {
		return a <= b // injected off-by-one: see SetCmpFlipForTest
	}
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

// filterByPred is the shared selected[] rewrite of Figure 8's filter
// variant: pred is only consulted for live rows, and the batch shrinks in
// place without branches beyond the predicate itself.
func filterByPred(b *VectorizedRowBatch, pred func(i int) bool) {
	newSize := 0
	if b.SelectedInUse {
		sel := b.Selected[:b.Size]
		for _, i := range sel {
			if pred(i) {
				b.Selected[newSize] = i
				newSize++
			}
		}
	} else {
		for i := 0; i < b.Size; i++ {
			if pred(i) {
				b.Selected[newSize] = i
				newSize++
			}
		}
		b.SelectedInUse = true
	}
	b.Size = newSize
}

// FilterColScalarLong filters `long_col op long_scalar`.
type FilterColScalarLong struct {
	Op     CmpOp
	Input  int
	Scalar int64
}

// Filter implements FilterExpression.
func (f *FilterColScalarLong) Filter(b *VectorizedRowBatch) {
	filterColScalar(b, f.Op, longView(b, f.Input), f.Scalar)
}

// FilterColScalarDouble filters `double_col op double_scalar`.
type FilterColScalarDouble struct {
	Op     CmpOp
	Input  int
	Scalar float64
}

// Filter implements FilterExpression.
func (f *FilterColScalarDouble) Filter(b *VectorizedRowBatch) {
	filterColScalar(b, f.Op, doubleView(b, f.Input), f.Scalar)
}

func filterColScalar[T Number](b *VectorizedRowBatch, op CmpOp, in numVector[T], scalar T) {
	if in.flags.IsRepeating {
		// Constant vector: the whole batch passes or fails at once —
		// run-length encoding carried into execution (§6.2).
		if nullAt(in.flags, 0) || !cmpHolds(op, in.vector[0], scalar) {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	v := in.vector
	if in.flags.NoNulls {
		if flippedOp.Load() != 0 {
			// Deliberate-bug mode (SetCmpFlipForTest): take the generic
			// comparator so the armed flip applies on the no-nulls path too.
			filterByPred(b, func(i int) bool { return cmpHolds(op, v[i], scalar) })
			return
		}
		// The hot path: no null checks in the loop.
		switch op {
		case EQ:
			filterByPred(b, func(i int) bool { return v[i] == scalar })
		case NE:
			filterByPred(b, func(i int) bool { return v[i] != scalar })
		case LT:
			filterByPred(b, func(i int) bool { return v[i] < scalar })
		case LE:
			filterByPred(b, func(i int) bool { return v[i] <= scalar })
		case GT:
			filterByPred(b, func(i int) bool { return v[i] > scalar })
		case GE:
			filterByPred(b, func(i int) bool { return v[i] >= scalar })
		}
		return
	}
	nulls := in.flags.IsNull
	filterByPred(b, func(i int) bool { return !nulls[i] && cmpHolds(op, v[i], scalar) })
}

// FilterColColLong filters `long_col op long_col`.
type FilterColColLong struct {
	Op          CmpOp
	Left, Right int
}

// Filter implements FilterExpression.
func (f *FilterColColLong) Filter(b *VectorizedRowBatch) {
	filterColCol(b, f.Op, longView(b, f.Left), longView(b, f.Right))
}

// FilterColColDouble filters `double_col op double_col`.
type FilterColColDouble struct {
	Op          CmpOp
	Left, Right int
}

// Filter implements FilterExpression.
func (f *FilterColColDouble) Filter(b *VectorizedRowBatch) {
	filterColCol(b, f.Op, doubleView(b, f.Left), doubleView(b, f.Right))
}

func filterColCol[T Number](b *VectorizedRowBatch, op CmpOp, l, r numVector[T]) {
	lVal := func(i int) (T, bool) {
		if l.flags.IsRepeating {
			return l.vector[0], nullAt(l.flags, 0)
		}
		return l.vector[i], nullAt(l.flags, i)
	}
	rVal := func(i int) (T, bool) {
		if r.flags.IsRepeating {
			return r.vector[0], nullAt(r.flags, 0)
		}
		return r.vector[i], nullAt(r.flags, i)
	}
	if !l.flags.IsRepeating && !r.flags.IsRepeating && l.flags.NoNulls && r.flags.NoNulls {
		lv, rv := l.vector, r.vector
		if flippedOp.Load() != 0 {
			// Deliberate-bug mode: see filterColScalar.
			filterByPred(b, func(i int) bool { return cmpHolds(op, lv[i], rv[i]) })
			return
		}
		switch op {
		case EQ:
			filterByPred(b, func(i int) bool { return lv[i] == rv[i] })
		case NE:
			filterByPred(b, func(i int) bool { return lv[i] != rv[i] })
		case LT:
			filterByPred(b, func(i int) bool { return lv[i] < rv[i] })
		case LE:
			filterByPred(b, func(i int) bool { return lv[i] <= rv[i] })
		case GT:
			filterByPred(b, func(i int) bool { return lv[i] > rv[i] })
		case GE:
			filterByPred(b, func(i int) bool { return lv[i] >= rv[i] })
		}
		return
	}
	filterByPred(b, func(i int) bool {
		a, an := lVal(i)
		c, cn := rVal(i)
		return !an && !cn && cmpHolds(op, a, c)
	})
}

// FilterBetweenLong filters `long_col BETWEEN lo AND hi`.
type FilterBetweenLong struct {
	Input  int
	Lo, Hi int64
}

// Filter implements FilterExpression.
func (f *FilterBetweenLong) Filter(b *VectorizedRowBatch) {
	in := b.Long(f.Input)
	if in.IsRepeating {
		v := in.Vector[0]
		if nullAt(&in.base, 0) || v < f.Lo || v > f.Hi {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	v := in.Vector
	if in.NoNulls {
		filterByPred(b, func(i int) bool { return v[i] >= f.Lo && v[i] <= f.Hi })
		return
	}
	nulls := in.IsNull
	filterByPred(b, func(i int) bool { return !nulls[i] && v[i] >= f.Lo && v[i] <= f.Hi })
}

// FilterBetweenDouble filters `double_col BETWEEN lo AND hi`.
type FilterBetweenDouble struct {
	Input  int
	Lo, Hi float64
}

// Filter implements FilterExpression.
func (f *FilterBetweenDouble) Filter(b *VectorizedRowBatch) {
	in := b.Double(f.Input)
	if in.IsRepeating {
		v := in.Vector[0]
		if nullAt(&in.base, 0) || v < f.Lo || v > f.Hi {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	v := in.Vector
	if in.NoNulls {
		filterByPred(b, func(i int) bool { return v[i] >= f.Lo && v[i] <= f.Hi })
		return
	}
	nulls := in.IsNull
	filterByPred(b, func(i int) bool { return !nulls[i] && v[i] >= f.Lo && v[i] <= f.Hi })
}

// FilterBytesColScalar filters `bytes_col op bytes_scalar`.
type FilterBytesColScalar struct {
	Op     CmpOp
	Input  int
	Scalar []byte
}

// cmpOrd evaluates op against a three-way comparison result (bytes.Compare
// style: negative, zero, positive).
func cmpOrd(op CmpOp, c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// Filter implements FilterExpression.
func (f *FilterBytesColScalar) Filter(b *VectorizedRowBatch) {
	in := b.Bytes(f.Input)
	holds := func(v []byte) bool { return cmpOrd(f.Op, bytes.Compare(v, f.Scalar)) }
	if in.IsRepeating {
		if nullAt(&in.base, 0) || !holds(in.Vector[0]) {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	v := in.Vector
	if in.NoNulls {
		filterByPred(b, func(i int) bool { return holds(v[i]) })
		return
	}
	nulls := in.IsNull
	filterByPred(b, func(i int) bool { return !nulls[i] && holds(v[i]) })
}

// FilterBytesColCol filters `bytes_col op bytes_col`.
type FilterBytesColCol struct {
	Op          CmpOp
	Left, Right int
}

// Filter implements FilterExpression.
func (f *FilterBytesColCol) Filter(b *VectorizedRowBatch) {
	l, r := b.Bytes(f.Left), b.Bytes(f.Right)
	val := func(v *BytesColumnVector, i int) ([]byte, bool) {
		if v.IsRepeating {
			return v.Vector[0], nullAt(&v.base, 0)
		}
		return v.Vector[i], nullAt(&v.base, i)
	}
	filterByPred(b, func(i int) bool {
		a, an := val(l, i)
		c, cn := val(r, i)
		return !an && !cn && cmpOrd(f.Op, bytes.Compare(a, c))
	})
}

// FilterLongInList filters `long_col IN (...)`.
type FilterLongInList struct {
	Input int
	Set   map[int64]struct{}
}

// Filter implements FilterExpression.
func (f *FilterLongInList) Filter(b *VectorizedRowBatch) {
	in := b.Long(f.Input)
	member := func(i int) bool {
		_, ok := f.Set[in.Value(i)]
		return ok && !nullAt(&in.base, i)
	}
	if in.IsRepeating {
		if !member(0) {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	filterByPred(b, member)
}

// FilterDoubleInList filters `double_col IN (...)`.
type FilterDoubleInList struct {
	Input int
	Set   map[float64]struct{}
}

// Filter implements FilterExpression.
func (f *FilterDoubleInList) Filter(b *VectorizedRowBatch) {
	in := b.Double(f.Input)
	member := func(i int) bool {
		_, ok := f.Set[in.Value(i)]
		return ok && !nullAt(&in.base, i)
	}
	if in.IsRepeating {
		if !member(0) {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	filterByPred(b, member)
}

// FilterBytesInList filters `bytes_col IN (...)`.
type FilterBytesInList struct {
	Input int
	Set   map[string]struct{}
}

// Filter implements FilterExpression.
func (f *FilterBytesInList) Filter(b *VectorizedRowBatch) {
	in := b.Bytes(f.Input)
	member := func(i int) bool {
		if nullAt(&in.base, i) {
			return false
		}
		_, ok := f.Set[string(in.Value(i))]
		return ok
	}
	if in.IsRepeating {
		if !member(0) {
			b.Size = 0
			b.SelectedInUse = true
		}
		return
	}
	filterByPred(b, member)
}

// FilterIsNull keeps rows where the column is NULL (or not, when Negated).
type FilterIsNull struct {
	Input   int
	Negated bool
	// Flags accessor chosen at construction from the column type.
	FlagsOf func(b *VectorizedRowBatch) *base
}

// NewFilterIsNull builds the filter for a column of any vector type.
func NewFilterIsNull(col int, negated bool) *FilterIsNull {
	return &FilterIsNull{Input: col, Negated: negated, FlagsOf: func(b *VectorizedRowBatch) *base {
		switch v := b.Columns[col].(type) {
		case *LongColumnVector:
			return &v.base
		case *DoubleColumnVector:
			return &v.base
		case *BytesColumnVector:
			return &v.base
		}
		panic("vector: unsupported column type for IS NULL")
	}}
}

// Filter implements FilterExpression.
func (f *FilterIsNull) Filter(b *VectorizedRowBatch) {
	flags := f.FlagsOf(b)
	filterByPred(b, func(i int) bool { return nullAt(flags, i) != f.Negated })
}

// FilterBoolColumn keeps rows where a boolean (long 0/1) column is true —
// used when a projection-mode comparison fed a filter context.
type FilterBoolColumn struct {
	Input int
}

// Filter implements FilterExpression.
func (f *FilterBoolColumn) Filter(b *VectorizedRowBatch) {
	in := b.Long(f.Input)
	filterByPred(b, func(i int) bool { return !nullAt(&in.base, i) && in.Value(i) != 0 })
}

// FilterAnd applies its children in sequence; each narrows selected[]
// further (§6.2: "subsequent expressions only work on rows selected by
// previous expressions").
type FilterAnd struct {
	Children []FilterExpression
}

// Filter implements FilterExpression.
func (f *FilterAnd) Filter(b *VectorizedRowBatch) {
	for _, c := range f.Children {
		c.Filter(b)
		if b.Size == 0 {
			return
		}
	}
}

// FilterOr evaluates each child over the original selection and unions the
// survivors, preserving row order.
type FilterOr struct {
	Children []FilterExpression
}

// Filter implements FilterExpression.
func (f *FilterOr) Filter(b *VectorizedRowBatch) {
	origSize := b.Size
	origInUse := b.SelectedInUse
	origSel := append([]int(nil), b.Selected[:b.Size]...)

	passed := map[int]struct{}{}
	for _, c := range f.Children {
		// Restore the original selection for this branch.
		b.Size = origSize
		b.SelectedInUse = origInUse
		copy(b.Selected, origSel)
		c.Filter(b)
		if b.SelectedInUse {
			for _, i := range b.Selected[:b.Size] {
				passed[i] = struct{}{}
			}
		} else {
			for i := 0; i < b.Size; i++ {
				passed[i] = struct{}{}
			}
		}
	}
	// Rebuild the selection in original row order.
	newSize := 0
	emit := func(i int) {
		if _, ok := passed[i]; ok {
			b.Selected[newSize] = i
			newSize++
		}
	}
	if origInUse {
		for _, i := range origSel {
			emit(i)
		}
	} else {
		for i := 0; i < origSize; i++ {
			emit(i)
		}
	}
	b.Size = newSize
	b.SelectedInUse = true
}

// FilterNot keeps the complement of its child's selection.
type FilterNot struct {
	Child FilterExpression
}

// Filter implements FilterExpression.
func (f *FilterNot) Filter(b *VectorizedRowBatch) {
	origSize := b.Size
	origInUse := b.SelectedInUse
	origSel := append([]int(nil), b.Selected[:b.Size]...)

	f.Child.Filter(b)
	dropped := map[int]struct{}{}
	if b.SelectedInUse {
		for _, i := range b.Selected[:b.Size] {
			dropped[i] = struct{}{}
		}
	} else {
		for i := 0; i < b.Size; i++ {
			dropped[i] = struct{}{}
		}
	}
	newSize := 0
	emit := func(i int) {
		if _, ok := dropped[i]; !ok {
			b.Selected[newSize] = i
			newSize++
		}
	}
	if origInUse {
		for _, i := range origSel {
			emit(i)
		}
	} else {
		for i := 0; i < origSize; i++ {
			emit(i)
		}
	}
	b.Size = newSize
	b.SelectedInUse = true
}
