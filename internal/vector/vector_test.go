package vector

import (
	"testing"
)

// fillLong creates a batch with one long column of the given values.
func fillLong(vals []int64, nulls []int) *VectorizedRowBatch {
	col := NewLongColumnVector(len(vals))
	copy(col.Vector, vals)
	for _, i := range nulls {
		col.SetNull(i)
	}
	b := NewBatch(len(vals), col)
	b.Size = len(vals)
	return b
}

func fillDouble(vals []float64) *VectorizedRowBatch {
	col := NewDoubleColumnVector(len(vals))
	copy(col.Vector, vals)
	b := NewBatch(len(vals), col)
	b.Size = len(vals)
	return b
}

func selected(b *VectorizedRowBatch) []int {
	var out []int
	b.Rows(func(i int) { out = append(out, i) })
	return out
}

func TestArithColScalarLong(t *testing.T) {
	b := fillLong([]int64{1, 2, 3, 4}, nil)
	out := b.AddColumn(NewLongColumnVector(4))
	e := &ArithColScalarLong{Op: Add, Input: 0, Out: out, Scalar: 10}
	e.Evaluate(b)
	want := []int64{11, 12, 13, 14}
	for i, w := range want {
		if b.Long(out).Vector[i] != w {
			t.Fatalf("row %d = %d, want %d", i, b.Long(out).Vector[i], w)
		}
	}
}

func TestArithHonorsSelected(t *testing.T) {
	// Figure 8's selected[] path: only live rows are computed.
	b := fillLong([]int64{1, 2, 3, 4}, nil)
	b.SelectedInUse = true
	b.Selected[0], b.Selected[1] = 1, 3
	b.Size = 2
	out := b.AddColumn(NewLongColumnVector(4))
	(&ArithColScalarLong{Op: Mul, Input: 0, Out: out, Scalar: 5}).Evaluate(b)
	o := b.Long(out).Vector
	if o[1] != 10 || o[3] != 20 {
		t.Fatalf("selected rows wrong: %v", o)
	}
	if o[0] != 0 || o[2] != 0 {
		t.Fatalf("unselected rows were computed: %v", o)
	}
}

func TestArithNullPropagation(t *testing.T) {
	b := fillLong([]int64{1, 2, 3}, []int{1})
	out := b.AddColumn(NewLongColumnVector(3))
	(&ArithColScalarLong{Op: Sub, Input: 0, Out: out, Scalar: 1}).Evaluate(b)
	o := b.Long(out)
	if o.NoNulls {
		t.Fatal("NoNulls not cleared")
	}
	if !o.Null(1) || o.Null(0) || o.Null(2) {
		t.Fatalf("null flags wrong: %v", o.IsNull)
	}
}

func TestArithIsRepeating(t *testing.T) {
	col := NewLongColumnVector(4)
	col.IsRepeating = true
	col.Vector[0] = 7
	b := NewBatch(4, col)
	b.Size = 4
	out := b.AddColumn(NewLongColumnVector(4))
	(&ArithColScalarLong{Op: Add, Input: 0, Out: out, Scalar: 1}).Evaluate(b)
	o := b.Long(out)
	if !o.IsRepeating || o.Vector[0] != 8 {
		t.Fatalf("repeating fast path wrong: repeating=%v v0=%d", o.IsRepeating, o.Vector[0])
	}
}

func TestArithColCol(t *testing.T) {
	l := NewDoubleColumnVector(3)
	r := NewDoubleColumnVector(3)
	copy(l.Vector, []float64{1, 2, 3})
	copy(r.Vector, []float64{10, 20, 30})
	b := NewBatch(3, l, r)
	b.Size = 3
	out := b.AddColumn(NewDoubleColumnVector(3))
	(&ArithColColDouble{Op: Mul, Left: 0, Right: 1, Out: out}).Evaluate(b)
	want := []float64{10, 40, 90}
	for i, w := range want {
		if b.Double(out).Vector[i] != w {
			t.Fatalf("row %d = %v", i, b.Double(out).Vector[i])
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	l := NewDoubleColumnVector(2)
	r := NewDoubleColumnVector(2)
	copy(l.Vector, []float64{6, 8})
	copy(r.Vector, []float64{2, 0})
	b := NewBatch(2, l, r)
	b.Size = 2
	out := b.AddColumn(NewDoubleColumnVector(2))
	(&ArithColColDouble{Op: Div, Left: 0, Right: 1, Out: out}).Evaluate(b)
	o := b.Double(out)
	if o.Vector[0] != 3 {
		t.Fatalf("6/2 = %v", o.Vector[0])
	}
	if !o.Null(1) {
		t.Fatal("8/0 did not yield NULL")
	}
}

func TestCastLongToDouble(t *testing.T) {
	b := fillLong([]int64{1, -2, 3}, []int{2})
	out := b.AddColumn(NewDoubleColumnVector(3))
	(&CastLongToDouble{Input: 0, Out: out}).Evaluate(b)
	o := b.Double(out)
	if o.Vector[0] != 1 || o.Vector[1] != -2 {
		t.Fatalf("cast wrong: %v", o.Vector)
	}
	if !o.Null(2) {
		t.Fatal("cast lost null")
	}
}

func TestFilterColScalar(t *testing.T) {
	b := fillLong([]int64{5, 10, 15, 20, 25}, nil)
	(&FilterColScalarLong{Op: GT, Input: 0, Scalar: 12}).Filter(b)
	got := selected(b)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("selected = %v", got)
	}
	// Chain: subsequent filter narrows further.
	(&FilterColScalarLong{Op: LT, Input: 0, Scalar: 22}).Filter(b)
	got = selected(b)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("chained selected = %v", got)
	}
}

func TestFilterRejectsNulls(t *testing.T) {
	b := fillLong([]int64{1, 100, 100}, []int{1})
	(&FilterColScalarLong{Op: GT, Input: 0, Scalar: 50}).Filter(b)
	got := selected(b)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("selected = %v (nulls must fail predicates)", got)
	}
}

func TestFilterRepeatingShortCircuit(t *testing.T) {
	col := NewLongColumnVector(100)
	col.IsRepeating = true
	col.Vector[0] = 3
	b := NewBatch(100, col)
	b.Size = 100
	(&FilterColScalarLong{Op: EQ, Input: 0, Scalar: 3}).Filter(b)
	if b.Size != 100 || b.SelectedInUse {
		t.Fatalf("all-pass repeating batch modified: size=%d", b.Size)
	}
	(&FilterColScalarLong{Op: EQ, Input: 0, Scalar: 4}).Filter(b)
	if b.Size != 0 {
		t.Fatalf("all-fail repeating batch kept %d rows", b.Size)
	}
}

func TestFilterBetween(t *testing.T) {
	b := fillLong([]int64{1, 5, 7, 9, 12}, nil)
	(&FilterBetweenLong{Input: 0, Lo: 5, Hi: 9}).Filter(b)
	got := selected(b)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("selected = %v", got)
	}
	bd := fillDouble([]float64{0.01, 0.05, 0.06, 0.99})
	(&FilterBetweenDouble{Input: 0, Lo: 0.05, Hi: 0.07}).Filter(bd)
	if got := selected(bd); len(got) != 2 {
		t.Fatalf("double between = %v", got)
	}
}

func TestFilterBytes(t *testing.T) {
	col := NewBytesColumnVector(3)
	col.Vector[0] = []byte("apple")
	col.Vector[1] = []byte("banana")
	col.Vector[2] = []byte("apple")
	b := NewBatch(3, col)
	b.Size = 3
	(&FilterBytesColScalar{Op: EQ, Input: 0, Scalar: []byte("apple")}).Filter(b)
	got := selected(b)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("selected = %v", got)
	}
}

func TestFilterInList(t *testing.T) {
	b := fillLong([]int64{1, 2, 3, 4, 5}, nil)
	(&FilterLongInList{Input: 0, Set: map[int64]struct{}{2: {}, 4: {}}}).Filter(b)
	got := selected(b)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("selected = %v", got)
	}
}

func TestFilterIsNull(t *testing.T) {
	b := fillLong([]int64{1, 2, 3}, []int{1})
	NewFilterIsNull(0, false).Filter(b)
	got := selected(b)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("IS NULL selected %v", got)
	}
	b2 := fillLong([]int64{1, 2, 3}, []int{1})
	NewFilterIsNull(0, true).Filter(b2)
	if got := selected(b2); len(got) != 2 {
		t.Fatalf("IS NOT NULL selected %v", got)
	}
}

func TestFilterOrUnionPreservesOrder(t *testing.T) {
	b := fillLong([]int64{1, 50, 3, 99, 5}, nil)
	or := &FilterOr{Children: []FilterExpression{
		&FilterColScalarLong{Op: LT, Input: 0, Scalar: 4},
		&FilterColScalarLong{Op: GT, Input: 0, Scalar: 90},
	}}
	or.Filter(b)
	got := selected(b)
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("selected = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected = %v, want %v", got, want)
		}
	}
}

func TestFilterAndShortCircuits(t *testing.T) {
	b := fillLong([]int64{1, 2, 3}, nil)
	and := &FilterAnd{Children: []FilterExpression{
		&FilterColScalarLong{Op: GT, Input: 0, Scalar: 100}, // empties the batch
		&FilterColScalarLong{Op: GT, Input: 0, Scalar: 0},
	}}
	and.Filter(b)
	if b.Size != 0 {
		t.Fatalf("size = %d", b.Size)
	}
}

func TestConstExpressions(t *testing.T) {
	b := fillLong([]int64{1, 2}, nil)
	out := b.AddColumn(NewDoubleColumnVector(2))
	(&ConstDouble{Out: out, Value: 2.5}).Evaluate(b)
	o := b.Double(out)
	if !o.IsRepeating || o.Vector[0] != 2.5 {
		t.Fatalf("const double: %+v", o)
	}
	nullOut := b.AddColumn(NewLongColumnVector(2))
	(&ConstLong{Out: nullOut, Null: true}).Evaluate(b)
	if !b.Long(nullOut).Null(1) {
		t.Fatal("null const not null")
	}
}

func TestBatchReset(t *testing.T) {
	b := fillLong([]int64{1, 2, 3}, []int{0})
	b.SelectedInUse = true
	b.Size = 1
	b.Reset()
	if b.Size != 0 || b.SelectedInUse {
		t.Fatal("batch not reset")
	}
	col := b.Long(0)
	if !col.NoNulls || col.IsNull[0] {
		t.Fatal("column flags not reset")
	}
}
