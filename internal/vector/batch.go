// Package vector implements the vectorized execution primitives of paper
// §6: VectorizedRowBatch (Figure 6), typed column vectors (Figure 7) with
// no-null and is-repeating flags, and the specialized vectorized
// expressions (Figure 8) that process a column vector in a tight loop with
// no per-row branches or method calls. Filters manipulate the selected[]
// array in place; subsequent expressions only touch selected rows.
package vector

import "fmt"

// DefaultBatchSize is the paper's default of 1024 rows, chosen so a batch
// fits in the processor cache.
const DefaultBatchSize = 1024

// ColumnVector is the base interface of typed vectors.
type ColumnVector interface {
	// Reset clears null/repeat flags for reuse.
	Reset()
	// Null reports whether row i is NULL.
	Null(i int) bool
	// Capacity is the allocated row capacity.
	Capacity() int
}

// base carries the flags shared by all vectors (paper §6.2): NoNulls set by
// the reader when the batch has no NULLs lets expressions skip null checks;
// IsRepeating marks a constant vector (run-length encoding carried into
// execution) so work is done once per batch.
type base struct {
	NoNulls     bool
	IsRepeating bool
	IsNull      []bool
}

// Reset implements ColumnVector.
func (b *base) Reset() {
	b.NoNulls = true
	b.IsRepeating = false
	for i := range b.IsNull {
		b.IsNull[i] = false
	}
}

// Null implements ColumnVector.
func (b *base) Null(i int) bool {
	if b.NoNulls {
		return false
	}
	if b.IsRepeating {
		i = 0
	}
	return b.IsNull[i]
}

// SetNull marks row i NULL.
func (b *base) SetNull(i int) {
	b.NoNulls = false
	b.IsNull[i] = true
}

// Capacity implements ColumnVector.
func (b *base) Capacity() int { return len(b.IsNull) }

// Flags exposes the base for expressions that combine flag state.
func (b *base) Flags() *base { return b }

// LongColumnVector holds all integer varieties, booleans (0/1) and
// timestamps, as the paper's Figure 7 prescribes.
type LongColumnVector struct {
	base
	Vector []int64
}

// NewLongColumnVector allocates a vector of n rows.
func NewLongColumnVector(n int) *LongColumnVector {
	return &LongColumnVector{base: base{NoNulls: true, IsNull: make([]bool, n)}, Vector: make([]int64, n)}
}

// Value returns row i honoring IsRepeating.
func (v *LongColumnVector) Value(i int) int64 {
	if v.IsRepeating {
		return v.Vector[0]
	}
	return v.Vector[i]
}

// DoubleColumnVector holds float and double columns.
type DoubleColumnVector struct {
	base
	Vector []float64
}

// NewDoubleColumnVector allocates a vector of n rows.
func NewDoubleColumnVector(n int) *DoubleColumnVector {
	return &DoubleColumnVector{base: base{NoNulls: true, IsNull: make([]bool, n)}, Vector: make([]float64, n)}
}

// Value returns row i honoring IsRepeating.
func (v *DoubleColumnVector) Value(i int) float64 {
	if v.IsRepeating {
		return v.Vector[0]
	}
	return v.Vector[i]
}

// BytesColumnVector holds string and binary columns as byte slices
// (references into reader buffers where possible).
type BytesColumnVector struct {
	base
	Vector [][]byte
}

// NewBytesColumnVector allocates a vector of n rows.
func NewBytesColumnVector(n int) *BytesColumnVector {
	return &BytesColumnVector{base: base{NoNulls: true, IsNull: make([]bool, n)}, Vector: make([][]byte, n)}
}

// Value returns row i honoring IsRepeating.
func (v *BytesColumnVector) Value(i int) []byte {
	if v.IsRepeating {
		return v.Vector[0]
	}
	return v.Vector[i]
}

// VectorizedRowBatch is one unit of vectorized work (paper Figure 6).
type VectorizedRowBatch struct {
	// Size is the logical row count of the batch.
	Size int
	// SelectedInUse indicates Selected[0:Size] lists the live rows.
	SelectedInUse bool
	Selected      []int
	Columns       []ColumnVector
}

// NewBatch creates a batch with the given columns and capacity n.
func NewBatch(n int, cols ...ColumnVector) *VectorizedRowBatch {
	return &VectorizedRowBatch{Selected: make([]int, n), Columns: cols}
}

// Reset prepares the batch for refilling.
func (b *VectorizedRowBatch) Reset() {
	b.Size = 0
	b.SelectedInUse = false
	for _, c := range b.Columns {
		c.Reset()
	}
}

// AddColumn appends a scratch column and returns its index; the expression
// compiler uses it for intermediate results.
func (b *VectorizedRowBatch) AddColumn(c ColumnVector) int {
	b.Columns = append(b.Columns, c)
	return len(b.Columns) - 1
}

// Rows iterates the live row indexes: either Selected[0:Size] or 0..Size-1.
// It is intended for boundary code (row emission), not inner loops — the
// expressions inline the two cases as Figure 8 shows.
func (b *VectorizedRowBatch) Rows(f func(i int)) {
	if b.SelectedInUse {
		for _, i := range b.Selected[:b.Size] {
			f(i)
		}
	} else {
		for i := 0; i < b.Size; i++ {
			f(i)
		}
	}
}

// Long returns column c as a LongColumnVector or panics with a diagnostic;
// expression construction validates types so this is a programming-error
// guard.
func (b *VectorizedRowBatch) Long(c int) *LongColumnVector {
	v, ok := b.Columns[c].(*LongColumnVector)
	if !ok {
		panic(fmt.Sprintf("vector: column %d is %T, want long", c, b.Columns[c]))
	}
	return v
}

// Double returns column c as a DoubleColumnVector.
func (b *VectorizedRowBatch) Double(c int) *DoubleColumnVector {
	v, ok := b.Columns[c].(*DoubleColumnVector)
	if !ok {
		panic(fmt.Sprintf("vector: column %d is %T, want double", c, b.Columns[c]))
	}
	return v
}

// Bytes returns column c as a BytesColumnVector.
func (b *VectorizedRowBatch) Bytes(c int) *BytesColumnVector {
	v, ok := b.Columns[c].(*BytesColumnVector)
	if !ok {
		panic(fmt.Sprintf("vector: column %d is %T, want bytes", c, b.Columns[c]))
	}
	return v
}

// Expression computes an output column over the batch.
type Expression interface {
	Evaluate(b *VectorizedRowBatch)
	// Output is the column index the result lands in.
	Output() int
}

// FilterExpression narrows the batch's selected rows in place (§6.2's
// second implementation family for comparisons, AND and OR).
type FilterExpression interface {
	Filter(b *VectorizedRowBatch)
}
